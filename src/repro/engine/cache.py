"""Content-addressed protocol hashing and the on-disk result cache.

``protocol_content_hash`` computes a SHA-256 digest of a *canonical* form of
a protocol: states, transitions, the input alphabet and both mappings are
sorted by a stable key before hashing, so two protocols that differ only in
the order their states or transitions were declared hash identically, while
any semantic difference (an extra transition, a flipped output bit, a
different input mapping) changes the digest.  Presentation-only attributes —
the name and free-form metadata — are excluded.

``ResultCache`` stores verification verdicts on disk, one JSON file per
entry, keyed by the protocol hash, the engine version and a digest of the
verification options.  Repeated sweeps over the same protocol set (repeated
benchmarks, parameter scans, ``repro-verify batch`` runs) are then served
from the cache instead of re-verifying.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path

from repro.io.serialization import _encode_state, protocol_to_dict
from repro.obs.metrics import REGISTRY
from repro.protocols.protocol import PopulationProtocol

logger = logging.getLogger(__name__)

#: Process-wide mirror of every instance's counters (``GET /metricsz``);
#: the per-instance ``statistics`` dicts keep the historical payload shape.
_EVENTS = REGISTRY.counter(
    "repro_result_cache_events_total",
    "Result-cache traffic: hits, misses, stores and quarantined corruptions",
)


def canonical_protocol_dict(protocol: PopulationProtocol) -> dict:
    """A canonical, order-independent dictionary form of a protocol.

    Built on :func:`repro.io.serialization.protocol_to_dict` (which already
    sorts states and the output map) with the remaining order-dependent
    pieces — transitions, the input alphabet, the input map and the layers
    of a partition hint — sorted by the ``repr`` of their encoded form, and
    the presentation-only ``name`` dropped.
    """
    data = protocol_to_dict(protocol)
    data.pop("name", None)
    for transition in data["transitions"]:
        transition.pop("name", None)
        transition["pre"] = sorted(transition["pre"], key=repr)
        transition["post"] = sorted(transition["post"], key=repr)
    data["transitions"] = sorted(data["transitions"], key=repr)
    data["input_alphabet"] = sorted(data["input_alphabet"], key=repr)
    data["input_map"] = sorted(data["input_map"], key=repr)
    if "partition_hint" in data:
        data["partition_hint"] = [
            sorted(
                (
                    {"pre": sorted(t["pre"], key=repr), "post": sorted(t["post"], key=repr)}
                    for t in layer
                ),
                key=repr,
            )
            for layer in data["partition_hint"]
        ]
    return data


def protocol_content_hash(protocol: PopulationProtocol) -> str:
    """SHA-256 digest of the canonical protocol form (hex, 64 chars)."""
    canonical = json.dumps(canonical_protocol_dict(protocol), sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def options_digest(options: dict) -> str:
    """Short digest of the verification options that affect cached verdicts."""
    canonical = json.dumps(
        {key: _encode_state(value) for key, value in sorted(options.items())},
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class ResultCache:
    """A content-addressed verification-result cache on disk.

    Entries are JSON files named ``<protocol-hash>-<engine-version>-
    <options-digest>.json``; writes go through a temporary file and an
    atomic rename, so concurrent writers (parallel batch runs sharing a
    cache directory) cannot leave a torn entry behind.  An entry that is
    present but undecodable — external corruption: a crashed filesystem, a
    truncating copy, an injected fault — is *quarantined* (renamed to
    ``*.corrupt``), logged, counted under ``statistics["corrupt"]`` and
    treated as a miss, so one bad file degrades a single lookup instead of
    wedging every future run against the same key.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.statistics = {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0}

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    @staticmethod
    def entry_key(protocol_hash: str, engine_version: str, options: dict) -> str:
        return f"{protocol_hash}-{engine_version}-{options_digest(options)}"

    def get(self, key: str) -> dict | None:
        """Look up an entry; counts a hit, a miss, or a quarantined corruption."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.statistics["misses"] += 1
            _EVENTS.inc(event="miss")
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            self._quarantine(path, error)
            self.statistics["misses"] += 1
            _EVENTS.inc(event="miss")
            return None
        self.statistics["hits"] += 1
        _EVENTS.inc(event="hit")
        return payload

    def _quarantine(self, path: Path, error: Exception) -> None:
        """Move an undecodable entry aside so it is re-verified, not re-hit."""
        self.statistics["corrupt"] += 1
        _EVENTS.inc(event="corrupt")
        logger.warning(
            "quarantining corrupt result-cache entry %s (%s: %s)",
            path.name,
            type(error).__name__,
            error,
        )
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass  # unreadable *and* unmovable: the miss already re-verifies

    def put(self, key: str, value: dict) -> None:
        """Store an entry atomically."""
        path = self._path(key)
        handle = tempfile.NamedTemporaryFile(
            mode="w", dir=self.directory, suffix=".tmp", delete=False, encoding="utf-8"
        )
        try:
            with handle:
                json.dump(value, handle, indent=2, sort_keys=True)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.statistics["stores"] += 1
        _EVENTS.inc(event="store")
        self._fault_corrupt(path)

    def _fault_corrupt(self, path: Path) -> None:
        """Chaos hook: truncate the entry just written when a plan says so."""
        from repro.testing import faults

        fault = faults.fire("cache.corrupt", key=path.stem)
        if fault is not None and fault.action == "corrupt":
            path.write_text('{"torn', encoding="utf-8")

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
