"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package (the
legacy ``setup.py develop`` code path used by ``pip install -e .`` with
``use-pep517 = false``).
"""

from setuptools import setup

setup()
