#!/usr/bin/env python3
"""CI smoke test of the ``repro-verify serve`` daemon, end to end.

Pipes a submit+events+cancel+result script through a real ``serve``
subprocess and asserts the acceptance scenario of the service PR: two jobs
submitted, events streamed for both, one cancelled, the other's report
received losslessly.  Exits non-zero (with a diagnostic) on any violation —
suitable for a CI step and for a quick local sanity check::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

REQUESTS = [
    {"op": "submit", "spec": "majority", "stream": True, "id": 1},
    {"op": "submit", "spec": "broadcast", "stream": True, "priority": -1, "id": 2},
    {"op": "cancel", "job": "job-2", "id": 3},
    {"op": "result", "job": "job-1", "wait": True, "id": 4},
    {"op": "wait", "job": "job-2", "id": 5},
    {"op": "shutdown", "id": 6},
]


def main() -> int:
    script = "\n".join(json.dumps(request) for request in REQUESTS) + "\n"
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve"],
        input=script,
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        print(f"serve exited with {proc.returncode}", file=sys.stderr)
        return 1

    lines = [json.loads(line) for line in proc.stdout.splitlines()]
    responses = {line["id"]: line for line in lines if line["type"] == "response" and "id" in line}
    events = [line for line in lines if line["type"] == "event"]

    failures = []
    for request_id in (1, 2, 3, 4, 5, 6):
        if not responses.get(request_id, {}).get("ok"):
            failures.append(f"request {request_id} did not succeed: {responses.get(request_id)}")
    streamed_jobs = {line["job"] for line in events}
    if not {"job-1", "job-2"} <= streamed_jobs:
        failures.append(f"expected streamed events for both jobs, saw {sorted(streamed_jobs)}")

    report_payload = responses.get(4, {}).get("report")
    if report_payload is None:
        failures.append("no report for job-1")
    else:
        sys.path.insert(0, env["PYTHONPATH"].split(os.pathsep)[0])
        from repro.api.report import VerificationReport

        report = VerificationReport.from_dict(report_payload)
        if report.to_dict() != report_payload:
            failures.append("job-1 report is not a lossless round trip")
        if not report.is_ws3:
            failures.append("majority unexpectedly not WS3")
        if not report.statistics.get("events"):
            failures.append("report statistics carry no event trail")

    status_job2 = responses.get(5, {}).get("status")
    if status_job2 not in ("cancelled", "done"):
        failures.append(f"job-2 ended in unexpected status {status_job2!r}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"serve smoke OK: {len(lines)} output lines, {len(events)} streamed events, "
        f"job-2 {status_job2}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
