"""Tests of the sharded routing tier (:mod:`repro.service.router`).

The unit layer exercises rendezvous hashing and job-id namespacing with no
processes at all.  The integration layer runs a real fleet: two
``repro-verify serve --tcp`` subprocess replicas under a
:class:`ReplicaSupervisor`, fronted by an in-process :class:`RouterServer`
on an ephemeral port, driven through :class:`VerificationClient` and
``http.client`` — the same two wire protocols a direct daemon serves.  The
shared fleet is module-scoped (subprocess spawns are the expensive part);
the failover test builds its own disposable fleet so SIGKILLing a replica
cannot perturb its neighbours.
"""

from __future__ import annotations

import http.client
import json
import socket
import time

import pytest

from repro.service import VerificationClient
from repro.service.client import RequestError
from repro.service.replicas import ReplicaSupervisor
from repro.service.router import (
    JobRouter,
    RouterServer,
    rendezvous_shard,
    split_job_id,
)
from repro.service.serve import ServeError


# ----------------------------------------------------------------------
# Unit layer: hashing and namespacing (no processes)
# ----------------------------------------------------------------------


class TestRendezvousHashing:
    def test_deterministic(self):
        shards = ["s0", "s1", "s2"]
        key = "a" * 64
        assert rendezvous_shard(key, shards) == rendezvous_shard(key, shards)
        assert rendezvous_shard(key, list(reversed(shards))) == rendezvous_shard(key, shards)

    def test_spreads_keys(self):
        shards = ["s0", "s1", "s2", "s3"]
        owners = {rendezvous_shard(f"key-{index}", shards) for index in range(64)}
        assert owners == set(shards)

    def test_minimal_disruption_on_shard_loss(self):
        """Removing one shard moves only that shard's keys."""
        shards = ["s0", "s1", "s2"]
        keys = [f"key-{index}" for index in range(128)]
        before = {key: rendezvous_shard(key, shards) for key in keys}
        survivors = ["s0", "s1"]
        for key in keys:
            after = rendezvous_shard(key, survivors)
            if before[key] != "s2":
                assert after == before[key], f"{key} moved without its shard dying"

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            rendezvous_shard("key", [])


class TestJobIdNamespacing:
    def test_round_trip(self):
        assert split_job_id("s0:job-1") == ("s0", "job-1")

    def test_local_id_may_contain_colons(self):
        assert split_job_id("s1:weird:id") == ("s1", "weird:id")

    @pytest.mark.parametrize("bad", ["job-1", ":job-1", "s0:", ""])
    def test_unnamespaced_ids_rejected(self, bad):
        with pytest.raises(ServeError):
            split_job_id(bad)


class TestRoutingHash:
    def test_same_spec_same_hash(self):
        router = JobRouter.__new__(JobRouter)  # hashing needs no fleet
        first = JobRouter.routing_hash(router, {"spec": "majority"})
        second = JobRouter.routing_hash(router, {"spec": "majority"})
        assert first == second and len(first) == 64

    def test_batch_hash_ignores_spec_order(self):
        router = JobRouter.__new__(JobRouter)
        forward = JobRouter.routing_hash(router, {"specs": ["majority", "broadcast"]})
        backward = JobRouter.routing_hash(router, {"specs": ["broadcast", "majority"]})
        assert forward == backward

    def test_submit_without_protocol_rejected(self):
        router = JobRouter.__new__(JobRouter)
        with pytest.raises(ServeError):
            JobRouter.routing_hash(router, {})


# ----------------------------------------------------------------------
# Integration layer: a real 2-shard fleet behind an in-process router
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """A started RouterServer over two subprocess replicas; drains on exit."""
    supervisor = ReplicaSupervisor(
        2, tmp_path_factory.mktemp("fleet"), workers=2, probe_interval=0.2
    )
    supervisor.start()
    router = JobRouter(supervisor)
    server = RouterServer(router)
    server.start()
    yield server
    assert server.drain(timeout=60), "the fleet did not drain gracefully"


def make_client(server, **kwargs) -> VerificationClient:
    host, port = server.address
    kwargs.setdefault("timeout", 120.0)
    kwargs.setdefault("seed", 0)
    return VerificationClient(host, port, **kwargs)


def http_request(server, method: str, path: str, body: dict | None = None, timeout: float = 60):
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"content-type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


def test_submit_routes_and_namespaces(fleet):
    with make_client(fleet) as client:
        job = client.submit("majority")
        shard, local = split_job_id(job)
        assert shard in fleet.router.shard_ids and local.startswith("job-")
        assert client.wait(job, timeout=120) == "done"
        payload = client.result(job)
        assert any(
            entry["property"] == "ws3" and entry["verdict"] == "holds"
            for entry in payload["report"]["properties"]
        )
        status = client.status(job)
        assert status["job"] == job and status["status"] == "done"


def test_same_protocol_same_shard_cache_hit(fleet):
    with make_client(fleet) as client:
        first = client.submit("broadcast")
        assert client.wait(first, timeout=120) == "done"
        repeat = client.submit("broadcast")
        assert split_job_id(repeat)[0] == split_job_id(first)[0]
        assert client.wait(repeat, timeout=120) == "done"
        stats = client.call({"op": "stats"})["stats"]
        owner = split_job_id(first)[0]
        assert stats["shards"][owner]["cache"]["hits"] >= 1


def test_batch_submit_is_sharded_and_proxied(fleet):
    with make_client(fleet) as client:
        job = client.submit(specs=["majority", "broadcast"])
        shard, _ = split_job_id(job)
        assert shard in fleet.router.shard_ids
        assert client.wait(job, timeout=120) == "done"
        batch = client.result(job)["batch"]
        assert {item["protocol"] for item in batch["items"]} == {"majority", "broadcast"}


def test_jobs_scatter_gathers_all_shards(fleet):
    with make_client(fleet) as client:
        submitted = {client.submit("majority"), client.submit("flock-of-birds:4")}
        for job in submitted:
            client.wait(job, timeout=120)
        response = client.call({"op": "jobs"})
        assert response["ok"]
        assert set(response["shards"]) == set(fleet.router.shard_ids)
        assert all(state == "ok" for state in response["shards"].values())
        listed = {entry["job"] for entry in response["jobs"]}
        assert submitted <= listed
        assert all(split_job_id(job)[0] in fleet.router.shard_ids for job in listed)


def test_stats_aggregates_fleet(fleet):
    with make_client(fleet) as client:
        response = client.call({"op": "stats"})
        stats = response["stats"]
        assert set(stats["shards"]) == set(fleet.router.shard_ids)
        for shard_stats in stats["shards"].values():
            assert shard_stats["journal"] is not None  # every shard is durable
        assert stats["router"]["routed_jobs"] >= 1
        assert "connections" in stats["server"]
        assert all(state["alive"] for state in stats["fleet"].values())


def test_events_proxied_with_namespaced_ids(fleet):
    with make_client(fleet) as client:
        job = client.submit("majority")
        events = list(client.events(job, poll_timeout=5.0))
        assert events, "no events proxied through the router"
        assert all(event["job_id"] == job for event in events)
        assert any(event["event"] == "job_finished" for event in events)


def test_streamed_submit_pumps_namespaced_events(fleet):
    host, port = fleet.address
    with socket.create_connection((host, port), timeout=60) as sock:
        sock.settimeout(60)
        reader = sock.makefile("r", encoding="utf-8", newline="\n")
        sock.sendall((json.dumps({"op": "submit", "spec": "majority", "stream": True, "id": 1}) + "\n").encode())
        submitted = json.loads(reader.readline())
        assert submitted["ok"] and ":" in submitted["job"]
        job = submitted["job"]
        deadline = time.monotonic() + 60
        finished = False
        while time.monotonic() < deadline and not finished:
            line = json.loads(reader.readline())
            if line.get("type") != "event":
                continue
            assert line["job"] == job
            assert line["event"]["job_id"] == job
            finished = line["event"]["event"] == "job_finished"
        assert finished, "streamed router session never saw job_finished"
        reader.close()


def test_cancel_proxied(fleet, tmp_path):
    with make_client(fleet) as client:
        # A queue-deep batch on one shard: cancel the last submit before it
        # runs.  Cancellation is cooperative — ``cancelled`` only means the
        # request landed before the job finished, so a job already running
        # may still complete ``done`` — but a job that ends ``cancelled``
        # must have no result, and the cancel must proxy to the right shard.
        jobs = [client.submit(specs=["flock-of-birds:4"] * 3) for _ in range(3)]
        cancelled = client.cancel(jobs[-1])
        statuses = {job: client.wait(job, timeout=120) for job in jobs}
        assert statuses[jobs[-1]] in ("cancelled", "done")
        if statuses[jobs[-1]] == "cancelled":
            assert cancelled
            with pytest.raises(RequestError):
                client.result(jobs[-1])


def test_unknown_job_ids_fail_cleanly(fleet):
    with make_client(fleet) as client:
        for bad in ("job-1", "s9:job-1", "s0:job-999"):
            response = client.call({"op": "status", "job": bad})
            assert not response["ok"]
            assert "unknown" in response["error"]


def test_http_healthz_readyz_aggregate(fleet):
    status, payload = http_request(fleet, "GET", "/healthz")
    assert status == 200
    assert set(payload["shards"]) == set(fleet.router.shard_ids)
    status, payload = http_request(fleet, "GET", "/readyz")
    assert status == 200
    assert payload["shards"] == len(fleet.router.shard_ids)
    assert payload["shards_ready"] >= 1


def test_http_metricsz_aggregates_shards(fleet):
    from repro.obs.metrics import parse_prometheus_text

    # Make sure at least one job routed through a shard before scraping.
    status, payload = http_request(fleet, "POST", "/jobs", body={"spec": "majority"})
    assert status == 202
    status, payload = http_request(fleet, "GET", f"/jobs/{payload['job']}?wait=120")
    assert status == 200 and payload["status"] == "done"

    host, port = fleet.address
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request("GET", "/metricsz")
        response = conn.getresponse()
        assert response.status == 200
        assert response.headers.get("content-type", "").startswith("text/plain")
        text = response.read().decode("utf-8")
    finally:
        conn.close()

    samples = parse_prometheus_text(text)  # raises on malformed lines
    # Every series is stamped with the process it came from; the router's
    # own counters and at least one replica's must both be present.
    shards = {
        labels.get("shard")
        for rows in samples.values()
        for labels, _ in rows
    }
    assert "router" in shards
    assert shards & set(fleet.router.shard_ids), f"no shard series in {shards}"
    routed = {
        labels["shard"]: value
        for labels, value in samples.get("repro_router_routed_jobs_total", [])
    }
    assert sum(routed.values()) >= 1
    # The shard that verified the job reports its job latency, labelled.
    job_counts = {
        labels.get("shard"): value
        for labels, value in samples.get("repro_job_seconds_count", [])
    }
    assert any(
        shard in fleet.router.shard_ids and value >= 1
        for shard, value in job_counts.items()
    )


def test_metrics_op_merges_fleet_snapshot(fleet):
    with make_client(fleet) as client:
        job = client.submit("majority")
        assert client.wait(job, timeout=120) == "done"
        response = client.call({"op": "metrics"})
    assert response["ok"] is True
    snapshot = response["metrics"]
    assert set(snapshot) == {"counters", "gauges", "histograms"}
    router_series = snapshot["counters"]["repro_router_events_total"]["series"]
    assert any('"shard":"router"' in key for key in router_series)


def test_http_statsz_and_jobs_listing(fleet):
    status, payload = http_request(fleet, "POST", "/jobs", body={"spec": "majority"})
    assert status == 202
    job = payload["job"]
    status, payload = http_request(fleet, "GET", f"/jobs/{job}?wait=120")
    assert status == 200 and payload["status"] == "done"
    assert "report" in payload

    status, payload = http_request(fleet, "GET", "/jobs")
    assert status == 200
    assert job in {entry["job"] for entry in payload["jobs"]}

    status, payload = http_request(fleet, "GET", "/statsz")
    assert status == 200
    assert set(payload["stats"]["shards"]) == set(fleet.router.shard_ids)
    assert payload["stats"]["server"]["http_requests"] >= 1


def test_http_404_for_unknown_namespaced_job(fleet):
    status, _ = http_request(fleet, "GET", "/jobs/s0:job-999")
    assert status == 404
    status, _ = http_request(fleet, "GET", "/jobs/not-namespaced")
    assert status == 404


# ----------------------------------------------------------------------
# Failover: a disposable fleet whose replica dies mid-job
# ----------------------------------------------------------------------


def test_replica_sigkill_failover_is_lossless(tmp_path):
    supervisor = ReplicaSupervisor(2, tmp_path / "fleet", workers=1, probe_interval=0.1)
    supervisor.start()
    server = RouterServer(JobRouter(supervisor))
    server.start()
    try:
        with make_client(server) as client:
            jobs = [client.submit(spec) for spec in ("majority", "broadcast", "flock-of-birds:4")]
            victim = split_job_id(jobs[0])[0]
            assert supervisor.kill(victim) is not None
            # Every acknowledged job still finishes: the supervisor restarts
            # the victim on its journal and the proxied ops fail over.
            for job in jobs:
                assert client.wait(job, timeout=180) == "done"
                assert "report" in client.result(job)
        assert supervisor.fleet_status()[victim]["restarts"] >= 1
        assert supervisor.statistics["restarts"] >= 1
    finally:
        assert server.drain(timeout=60)


def test_drain_propagates_to_replicas(tmp_path):
    supervisor = ReplicaSupervisor(1, tmp_path / "fleet", workers=1)
    supervisor.start()
    server = RouterServer(JobRouter(supervisor))
    server.start()
    host, port, _ = supervisor.address("s0")
    assert server.drain(timeout=60)
    # The replica's listener must be gone: the fleet died with the router.
    with pytest.raises(OSError):
        socket.create_connection((host, port), timeout=2).close()
