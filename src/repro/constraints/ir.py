"""A solver-agnostic intermediate representation of constraint systems.

Every verification procedure of the paper ultimately poses the same kind of
question: *is this typed system of linear integer constraints satisfiable?*
Before this module existed each procedure assembled its formulas directly
against one concrete solver object; the IR separates the three concerns:

* **what the system says** — a :class:`ConstraintSystem`: integer variables
  with bounds, organised into *named groups* (``"config:c0"``,
  ``"flow:x1"``, ``"input"``, ...), plus a conjunction of
  :class:`~repro.smtlite.formula.Formula` constraints over them.  The
  formula AST of :mod:`repro.smtlite.formula` is deliberately reused — it
  is a pure syntax layer with no solving machinery — so the IR adds
  structure (variables, bounds, groups, block provenance) rather than a
  parallel expression language;
* **how it is simplified** — :mod:`repro.constraints.simplify` normalises a
  system (constant folding, bound tightening, duplicate and subsumed
  constraint elimination) independently of any backend;
* **who solves it** — :mod:`repro.constraints.backends` turns a system into
  verdicts through the pluggable :class:`SolverBackend` registry.

A system is *satisfiable under an assignment* iff every variable respects
its declared bounds and every constraint evaluates to true; bounds are part
of the system's meaning, which is what lets the simplifier move
single-variable constraints into bounds without changing satisfiability.

Systems support true push/pop (:meth:`ConstraintSystem.push_scope` /
:meth:`ConstraintSystem.pop_scope`): everything asserted, declared or
tightened inside a scope is recorded on an undo trail and retracted exactly
on pop, so the CEGAR refinement loops can reuse one system across many
closely-related queries instead of rebuilding it per scope.  The scoped
form is what :class:`repro.constraints.incremental.ScopedSimplifier`
normalises delta-by-delta against a persistent dedup/subsumption index.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.smtlite.formula import Formula, conjunction
from repro.smtlite.terms import LinearExpr

Bound = tuple[int | None, int | None]

#: The default domain of IR variables — the natural numbers, as everywhere
#: in the paper (configurations, flows and inputs are all counts).
DEFAULT_BOUND: Bound = (0, None)


class ConstraintSystem:
    """A typed system of linear integer constraints with named variable groups.

    The system is mutable while being built (the builders of
    :mod:`repro.constraints.builders` append blocks to it) and is consumed
    either by :func:`repro.constraints.simplify.simplify_system` or by a
    backend solver via :meth:`assert_into`.
    """

    __slots__ = ("name", "bounds", "groups", "constraints", "_scopes")

    def __init__(self, name: str = ""):
        self.name = name
        self.bounds: dict[str, Bound] = {}
        self.groups: dict[str, tuple[str, ...]] = {}
        self.constraints: list[Formula] = []
        #: Undo trail of the open scopes: each frame records the constraint
        #: count at push time plus the *previous* value (``None`` = absent)
        #: of every bound/group entry first touched inside the scope.
        self._scopes: list[dict] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _record_bound(self, variable: str) -> None:
        if self._scopes:
            self._scopes[-1]["bounds"].setdefault(variable, self.bounds.get(variable))

    def _record_group(self, group: str) -> None:
        if self._scopes:
            self._scopes[-1]["groups"].setdefault(group, self.groups.get(group))

    def declare(
        self,
        variable: str,
        lower: int | None = 0,
        upper: int | None = None,
        group: str | None = None,
    ) -> LinearExpr:
        """Declare (or re-declare) a variable with bounds; returns its expression."""
        self._record_bound(variable)
        self.bounds[variable] = (lower, upper)
        if group is not None:
            members = self.groups.get(group, ())
            if variable not in members:
                self._record_group(group)
                self.groups[group] = members + (variable,)
        return LinearExpr.variable(variable)

    def tighten(
        self, variable: str, lower: int | None = None, upper: int | None = None
    ) -> Bound:
        """Intersect a variable's bounds with ``[lower, upper]`` (scoped, undoable).

        ``None`` leaves the corresponding side untouched.  Unlike
        :meth:`declare` — which *replaces* bounds — tightening can only
        shrink the domain, which is what makes it sound to apply inside a
        retractable scope and undo on pop.  Returns the new bound.
        """
        old_lower, old_upper = self.bounds.get(variable, DEFAULT_BOUND)
        new_lower = old_lower if lower is None else (lower if old_lower is None else max(old_lower, lower))
        new_upper = old_upper if upper is None else (upper if old_upper is None else min(old_upper, upper))
        self._record_bound(variable)
        self.bounds[variable] = (new_lower, new_upper)
        return (new_lower, new_upper)

    def declare_group(
        self,
        group: str,
        variables: Iterable[str],
        lower: int | None = 0,
        upper: int | None = None,
    ) -> dict[str, LinearExpr]:
        """Declare a whole named group at once; returns name -> expression."""
        return {name: self.declare(name, lower, upper, group=group) for name in variables}

    def add(self, *formulas: Formula) -> None:
        """Append constraints (conjunctively).  Top-level conjunctions are split."""
        from repro.smtlite.formula import And

        for formula in formulas:
            if not isinstance(formula, Formula):
                raise TypeError(f"expected a Formula, got {formula!r}")
            if isinstance(formula, And):
                self.constraints.extend(formula.operands)
            else:
                self.constraints.append(formula)

    def merge(self, other: "ConstraintSystem") -> None:
        """Absorb another system: bounds, groups and constraints."""
        for variable, bound in other.bounds.items():
            self._record_bound(variable)
            self.bounds[variable] = bound
        for group, members in other.groups.items():
            existing = self.groups.get(group, ())
            added = tuple(m for m in members if m not in existing)
            if added:
                self._record_group(group)
                self.groups[group] = existing + added
        self.constraints.extend(other.constraints)

    # ------------------------------------------------------------------
    # Scoped deltas
    # ------------------------------------------------------------------

    def push_scope(self) -> None:
        """Open a retractable scope: later adds/declares/tightens undo on pop."""
        self._scopes.append({"mark": len(self.constraints), "bounds": {}, "groups": {}})

    def pop_scope(self) -> None:
        """Retract the innermost scope exactly (constraints, bounds, groups).

        The invariant the incremental simplifier and the property-based
        tests rely on: after pop, the system is *identical* to its state at
        the matching push — no constraint, bound or group entry leaks.
        """
        if not self._scopes:
            raise RuntimeError("pop_scope() without a matching push_scope()")
        frame = self._scopes.pop()
        del self.constraints[frame["mark"]:]
        for variable, previous in frame["bounds"].items():
            if previous is None:
                self.bounds.pop(variable, None)
            else:
                self.bounds[variable] = previous
        for group, previous in frame["groups"].items():
            if previous is None:
                self.groups.pop(group, None)
            else:
                self.groups[group] = previous

    @property
    def scope_depth(self) -> int:
        return len(self._scopes)

    def scope_marks(self) -> tuple[int, ...]:
        """Constraint-count marks of the open scopes (the system's scope shape).

        Part of the simplify-cache key: a scoped system must never collide
        with a from-scratch system of identical flattened content, because
        the scoped one can still be popped back below the shared prefix.
        """
        return tuple(frame["mark"] for frame in self._scopes)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self) -> Iterator[Formula]:
        return iter(self.constraints)

    def group(self, name: str) -> tuple[str, ...]:
        return self.groups.get(name, ())

    def variables(self) -> frozenset[str]:
        """Declared variables plus every variable mentioned by a constraint."""
        names = set(self.bounds)
        for formula in self.constraints:
            names.update(formula.int_variables())
        return frozenset(names)

    def bound_of(self, variable: str) -> Bound:
        return self.bounds.get(variable, DEFAULT_BOUND)

    def conjunction(self) -> Formula:
        """The whole system as one formula (bounds not included)."""
        return conjunction(list(self.constraints))

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        """Satisfaction under a total integer assignment, *including* bounds.

        Undeclared variables carry the default natural-number bound, so an
        assignment giving them a negative value falsifies the system.
        """
        for variable in self.variables():
            value = assignment.get(variable, 0)
            lower, upper = self.bound_of(variable)
            if lower is not None and value < lower:
                return False
            if upper is not None and value > upper:
                return False
        return all(formula.evaluate(assignment) for formula in self.constraints)

    # ------------------------------------------------------------------
    # Handing the system to a solver
    # ------------------------------------------------------------------

    def assert_into(self, solver) -> None:
        """Declare every bound and assert every constraint into a backend solver.

        ``solver`` is any object implementing the
        :class:`~repro.constraints.backends.ConstraintSolver` protocol
        (``int_var`` + ``add``); both the smtlite DPLL(T) solver and the
        direct-ILP solver qualify.

        Default-bound variables are *not* declared: ``(0, None)`` is every
        solver's implicit domain already, and explicitly declaring a
        variable makes the solver mention it in every theory query — extra
        columns that perturb (without changing) the answers.
        """
        for variable, (lower, upper) in self.bounds.items():
            if (lower, upper) == DEFAULT_BOUND:
                continue
            solver.int_var(variable, lower=lower, upper=upper)
        for formula in self.constraints:
            solver.add(formula)

    def __repr__(self) -> str:
        return (
            f"ConstraintSystem({self.name!r}, {len(self.bounds)} var(s), "
            f"{len(self.groups)} group(s), {len(self.constraints)} constraint(s))"
        )
