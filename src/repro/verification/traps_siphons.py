"""U-traps and U-siphons of population protocols (Definition 10).

For a subset ``U`` of transitions:

* a set of states ``P`` is a *U-trap* if every transition of ``U`` that takes
  an agent out of ``P`` also puts an agent into ``P`` (``P• ∩ U ⊆ •P``);
* a set of states ``P`` is a *U-siphon* if every transition of ``U`` that
  puts an agent into ``P`` also takes an agent out of ``P`` (``•P ∩ U ⊆ P•``).

Traps, once marked, stay marked; siphons, once empty, stay empty
(Observation 11).  Because traps (and siphons) are closed under union, the
*maximal* trap (siphon) inside a given set of states is unique and can be
computed by a simple greedy fixed point, which is what the CEGAR refinement
loop of Section 6 uses.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.protocols.protocol import PopulationProtocol, Transition


def pre_transitions(
    protocol: PopulationProtocol, states: Iterable, transitions: Iterable[Transition] | None = None
) -> frozenset[Transition]:
    """``•P``: transitions whose *post* multiset intersects ``states``."""
    state_set = set(states)
    pool = protocol.transitions if transitions is None else transitions
    return frozenset(t for t in pool if set(t.post.support()) & state_set)


def post_transitions(
    protocol: PopulationProtocol, states: Iterable, transitions: Iterable[Transition] | None = None
) -> frozenset[Transition]:
    """``P•``: transitions whose *pre* multiset intersects ``states``."""
    state_set = set(states)
    pool = protocol.transitions if transitions is None else transitions
    return frozenset(t for t in pool if set(t.pre.support()) & state_set)


def is_trap(protocol: PopulationProtocol, states: Iterable, transitions: Iterable[Transition]) -> bool:
    """Is ``states`` a U-trap for ``U = transitions``?"""
    state_set = set(states)
    for transition in transitions:
        takes_out = bool(set(transition.pre.support()) & state_set)
        puts_in = bool(set(transition.post.support()) & state_set)
        if takes_out and not puts_in:
            return False
    return True


def is_siphon(protocol: PopulationProtocol, states: Iterable, transitions: Iterable[Transition]) -> bool:
    """Is ``states`` a U-siphon for ``U = transitions``?"""
    state_set = set(states)
    for transition in transitions:
        puts_in = bool(set(transition.post.support()) & state_set)
        takes_out = bool(set(transition.pre.support()) & state_set)
        if puts_in and not takes_out:
            return False
    return True


def maximal_trap_with_support_outside(
    protocol: PopulationProtocol,
    transitions: Iterable[Transition],
    candidate_states: Iterable,
) -> frozenset:
    """The unique maximal U-trap contained in ``candidate_states``.

    Greedy fixed point: repeatedly remove a state ``q`` if some transition of
    ``U`` takes an agent from ``q`` but puts no agent into the current set.
    Runs in time polynomial in ``|U| * |Q|``.
    """
    transitions = list(transitions)
    current: set = set(candidate_states)
    changed = True
    while changed and current:
        changed = False
        for transition in transitions:
            if not set(transition.post.support()) & current:
                offending = set(transition.pre.support()) & current
                if offending:
                    current -= offending
                    changed = True
    return frozenset(current)


def maximal_siphon_with_support_outside(
    protocol: PopulationProtocol,
    transitions: Iterable[Transition],
    candidate_states: Iterable,
) -> frozenset:
    """The unique maximal U-siphon contained in ``candidate_states``."""
    transitions = list(transitions)
    current: set = set(candidate_states)
    changed = True
    while changed and current:
        changed = False
        for transition in transitions:
            if not set(transition.pre.support()) & current:
                offending = set(transition.post.support()) & current
                if offending:
                    current -= offending
                    changed = True
    return frozenset(current)


def all_minimal_siphons(
    protocol: PopulationProtocol, transitions: Iterable[Transition] | None = None, limit: int = 1000
) -> list[frozenset]:
    """Enumerate minimal non-empty siphons (small protocols only).

    This is exponential in the worst case and intended for tests, examples
    and diagnostics; the verification engine itself only ever needs maximal
    traps/siphons inside a candidate set.
    """
    pool = list(protocol.transitions if transitions is None else transitions)
    states = sorted(protocol.states, key=repr)
    siphons: list[frozenset] = []

    def is_minimal(candidate: frozenset) -> bool:
        return not any(existing < candidate for existing in siphons)

    from itertools import combinations

    for size in range(1, len(states) + 1):
        if len(siphons) >= limit:
            break
        for subset in combinations(states, size):
            candidate = frozenset(subset)
            if not is_minimal(candidate):
                continue
            if is_siphon(protocol, candidate, pool):
                siphons.append(candidate)
                if len(siphons) >= limit:
                    break
    return [s for s in siphons if not any(other < s for other in siphons)]
