"""Unified observability: metrics registry, trace spans, profiling hooks.

Three pillars, one import point:

* :mod:`repro.obs.metrics` — a process-global :data:`~repro.obs.metrics.REGISTRY`
  of thread-safe counters, gauges and label-aware log-scale histograms with a
  mergeable snapshot form and a Prometheus text encoder.  Every counter that
  used to live in an ad-hoc per-module dictionary (incremental-IR stats,
  result/simplify-cache traffic, scheduler retries, backend demotions, network
  connection counters) is mirrored here, so ``GET /metricsz`` serves one
  scrapeable surface and the router aggregates it fleet-wide with per-shard
  labels.
* :mod:`repro.obs.trace` — contextvar-based hierarchical spans
  (job → property → CEGAR iteration / layer → subproblem → solver check)
  recorded into a bounded ring, shippable across process boundaries in
  subproblem result envelopes and re-parented by the coordinator; serialized
  as Chrome-trace-event JSON.
* :mod:`repro.obs.profile` — opt-in per-job wall/CPU phase timing and a
  ``cProfile`` capture helper, keyed off the execution-only
  ``VerificationOptions.trace`` / ``VerificationOptions.profile`` flags
  (excluded from cache keys like ``jobs``).
"""

from repro.obs.metrics import (  # noqa: F401
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    label_snapshot,
    merge_snapshots,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.profile import PhaseProfile, cprofile_capture  # noqa: F401
from repro.obs.trace import (  # noqa: F401
    Span,
    TraceSink,
    adopt_spans,
    chrome_trace,
    collect,
    current_span_id,
    span,
    tracing_active,
)
