"""Deprecated import path: traps/siphons live in :mod:`repro.petri.traps_siphons`.

The protocol-level U-trap/U-siphon functions (Definition 10) and the
net-level classical ones used to be two near-identical copies; they are now
one generic implementation in :mod:`repro.petri.traps_siphons`.  This shim
re-exports the protocol-level surface under its historical names so old
imports keep working, at the price of a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.petri.traps_siphons import (  # noqa: F401  (re-exported surface)
    all_minimal_siphons,
    is_siphon,
    is_trap,
    maximal_siphon_with_support_outside,
    maximal_trap_with_support_outside,
    post_transitions,
    pre_transitions,
    transition_supports,
)

warnings.warn(
    "repro.verification.traps_siphons is deprecated; import from "
    "repro.petri.traps_siphons instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "all_minimal_siphons",
    "is_siphon",
    "is_trap",
    "maximal_siphon_with_support_outside",
    "maximal_trap_with_support_outside",
    "post_transitions",
    "pre_transitions",
    "transition_supports",
]
