"""Normalisation and simplification of constraint systems.

The pass is deliberately cheap (one linear sweep plus hashing) and exactly
satisfiability-preserving — including under *evaluation*: for every total
integer assignment, the simplified system (bounds plus constraints) is
satisfied iff the original one is.  That stronger property is what the
property-based tests check on random systems, and it is what makes the pass
safe to run in front of *any* backend.

Four rewrites are applied, in order:

1. **constant folding** — boolean constants and constant atoms are folded
   recursively *without* otherwise rewriting the formula (structure is
   preserved so the downstream CNF conversion sees the shapes it always
   saw); a conjunct folding to TRUE disappears, one folding to FALSE
   collapses the whole system;
2. **bound tightening** — a top-level single-variable atom ``a*x + c <= 0``
   is moved into the variable's declared bounds (``x <= floor(-c/a)`` or
   ``x >= ceil(-c/a)``); contradictory bounds collapse the system.  Skipped
   with ``tighten_bounds=False``, which callers use when the simplified
   block is asserted into a retractable solver scope (bounds are not
   scoped);
3. **duplicate elimination** — structurally identical conjuncts are kept
   once (the formula AST is hashable);
4. **subsumption** — among top-level atoms with identical coefficient
   vectors only the tightest constant survives (``e + 5 <= 0`` subsumes
   ``e + 2 <= 0``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.constraints.ir import ConstraintSystem
from repro.smtlite.formula import (
    FALSE,
    TRUE,
    And,
    Atom,
    BoolConst,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    conjunction,
    disjunction,
)


def fold_constants(formula: Formula) -> Formula:
    """Recursively fold boolean constants, preserving formula structure."""
    if isinstance(formula, Atom):
        if formula.expr.is_constant():
            return TRUE if formula.expr.constant <= 0 else FALSE
        return formula
    if isinstance(formula, Not):
        inner = fold_constants(formula.operand)
        if isinstance(inner, BoolConst):
            return FALSE if inner.value else TRUE
        return formula if inner is formula.operand else Not(inner)
    if isinstance(formula, And):
        return conjunction([fold_constants(operand) for operand in formula.operands])
    if isinstance(formula, Or):
        return disjunction([fold_constants(operand) for operand in formula.operands])
    if isinstance(formula, Implies):
        antecedent = fold_constants(formula.antecedent)
        consequent = fold_constants(formula.consequent)
        if isinstance(antecedent, BoolConst):
            return consequent if antecedent.value else TRUE
        if isinstance(consequent, BoolConst):
            if consequent.value:
                return TRUE
            return fold_constants(Not(antecedent))
        if antecedent is formula.antecedent and consequent is formula.consequent:
            return formula
        return Implies(antecedent, consequent)
    if isinstance(formula, Iff):
        left = fold_constants(formula.left)
        right = fold_constants(formula.right)
        if isinstance(left, BoolConst):
            return right if left.value else fold_constants(Not(right))
        if isinstance(right, BoolConst):
            return left if right.value else fold_constants(Not(left))
        if left is formula.left and right is formula.right:
            return formula
        return Iff(left, right)
    return formula  # BoolConst, BoolVar


@dataclass
class SimplifyStats:
    """What one :func:`simplify_system` pass did (and how much it saved)."""

    constraints_before: int = 0
    constraints_after: int = 0
    folded: int = 0
    bounds_tightened: int = 0
    duplicates_removed: int = 0
    subsumed_removed: int = 0
    collapsed_to_false: bool = False

    @property
    def removed(self) -> int:
        return self.constraints_before - self.constraints_after

    def merge(self, other: "SimplifyStats") -> None:
        """Accumulate another pass's counters (used by per-run statistics)."""
        self.constraints_before += other.constraints_before
        self.constraints_after += other.constraints_after
        self.folded += other.folded
        self.bounds_tightened += other.bounds_tightened
        self.duplicates_removed += other.duplicates_removed
        self.subsumed_removed += other.subsumed_removed
        self.collapsed_to_false = self.collapsed_to_false or other.collapsed_to_false

    def to_dict(self) -> dict:
        return {
            "before": self.constraints_before,
            "after": self.constraints_after,
            "folded": self.folded,
            "bounds_tightened": self.bounds_tightened,
            "duplicates_removed": self.duplicates_removed,
            "subsumed_removed": self.subsumed_removed,
        }


def _single_variable_bound(atom: Atom) -> tuple[str, int, bool] | None:
    """Decode ``a*x + c <= 0`` into a bound: ``(x, value, is_upper)``."""
    coefficients = atom.expr.coefficients
    if len(coefficients) != 1:
        return None
    (name, a), c = next(iter(coefficients.items())), atom.expr.constant
    if a > 0:  # x <= floor(-c / a)
        return name, math.floor(Fraction(-c, a)), True
    return name, math.ceil(Fraction(-c, a)), False  # x >= ceil(-c / a)


def simplify_system(
    system: ConstraintSystem, tighten_bounds: bool = True
) -> tuple[ConstraintSystem, SimplifyStats]:
    """Return an equivalent, smaller system plus the savings accounting."""
    stats = SimplifyStats(constraints_before=len(system.constraints))
    result = ConstraintSystem(system.name)
    result.bounds = dict(system.bounds)
    result.groups = {group: tuple(members) for group, members in system.groups.items()}

    def collapse() -> tuple[ConstraintSystem, SimplifyStats]:
        stats.collapsed_to_false = True
        result.constraints = [FALSE]
        stats.constraints_after = 1
        return result, stats

    # Pass 1: constant folding, splitting top-level conjunctions.
    flat: list[Formula] = []
    for constraint in system.constraints:
        folded = fold_constants(constraint)
        if isinstance(folded, BoolConst):
            if not folded.value:
                return collapse()
            stats.folded += 1
            continue
        if isinstance(folded, And):
            flat.extend(folded.operands)
        else:
            flat.append(folded)

    # Pass 2: bound tightening on single-variable atoms.
    remaining: list[Formula] = []
    if tighten_bounds:
        for formula in flat:
            decoded = _single_variable_bound(formula) if isinstance(formula, Atom) else None
            if decoded is None:
                remaining.append(formula)
                continue
            name, value, is_upper = decoded
            lower, upper = result.bounds.get(name, (0, None))
            if is_upper:
                upper = value if upper is None else min(upper, value)
            else:
                lower = value if lower is None else max(lower, value)
            result.bounds[name] = (lower, upper)
            stats.bounds_tightened += 1
            if lower is not None and upper is not None and lower > upper:
                return collapse()
    else:
        remaining = flat

    # Pass 3: duplicate elimination (first occurrence wins, order preserved).
    seen: set[Formula] = set()
    deduped: list[Formula] = []
    for formula in remaining:
        if formula in seen:
            stats.duplicates_removed += 1
            continue
        seen.add(formula)
        deduped.append(formula)

    # Pass 4: subsumption among atoms sharing a coefficient vector.  The
    # atom ``e + c <= 0`` with the largest ``c`` implies all the others.
    strongest: dict[frozenset, int] = {}
    for formula in deduped:
        if isinstance(formula, Atom):
            key = frozenset(formula.expr.coefficients.items())
            constant = formula.expr.constant
            if key not in strongest or constant > strongest[key]:
                strongest[key] = constant
    for formula in deduped:
        if isinstance(formula, Atom):
            key = frozenset(formula.expr.coefficients.items())
            if formula.expr.constant < strongest[key]:
                stats.subsumed_removed += 1
                continue
        result.constraints.append(formula)

    stats.constraints_after = len(result.constraints)
    return result, stats
