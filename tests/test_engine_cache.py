"""Tests for the content-addressed protocol hash and the on-disk result cache."""

from __future__ import annotations

import json

from repro.engine import ENGINE_VERSION, ResultCache, protocol_content_hash
from repro.protocols.library import (
    broadcast_protocol,
    coin_flip_protocol,
    exclusive_majority_protocol,
    flock_of_birds_protocol,
    flock_of_birds_threshold_n_protocol,
    majority_protocol,
    oscillating_majority_protocol,
    remainder_protocol,
    threshold_table_protocol,
)
from repro.protocols.protocol import PopulationProtocol


def _reordered_clone(protocol: PopulationProtocol, reverse: bool = True) -> PopulationProtocol:
    """The same protocol with states/transitions/alphabet declared in another order."""
    order = reversed if reverse else list
    return PopulationProtocol(
        states=order(sorted(protocol.states, key=repr)),
        transitions=order(list(protocol.transitions)),
        input_alphabet=order(list(protocol.input_alphabet)),
        input_map=dict(reversed(list(protocol.input_map.items()))),
        output_map=dict(reversed(list(protocol.output_map.items()))),
        name=protocol.name + " (permuted)",
        partition_hint=protocol.partition_hint,
        metadata=protocol.metadata,
    )


class TestProtocolContentHash:
    def test_permuted_declaration_order_hashes_identically(self):
        for protocol in (
            majority_protocol(),
            broadcast_protocol(),
            flock_of_birds_protocol(4),
            remainder_protocol([1], 3, 1),
            threshold_table_protocol(2),
        ):
            assert protocol_content_hash(protocol) == protocol_content_hash(
                _reordered_clone(protocol)
            ), f"hash of {protocol.name} is declaration-order dependent"

    def test_name_and_metadata_do_not_affect_the_hash(self):
        protocol = majority_protocol()
        renamed = PopulationProtocol(
            states=protocol.states,
            transitions=protocol.transitions,
            input_alphabet=protocol.input_alphabet,
            input_map=protocol.input_map,
            output_map=protocol.output_map,
            name="something else",
            partition_hint=protocol.partition_hint,
            metadata={"note": "different metadata"},
        )
        assert protocol_content_hash(protocol) == protocol_content_hash(renamed)

    def test_output_flip_changes_the_hash(self, broadcast_protocol):
        flipped = broadcast_protocol.with_negated_output()
        assert protocol_content_hash(broadcast_protocol) != protocol_content_hash(flipped)

    def test_distinct_library_families_do_not_collide(self):
        protocols = [
            majority_protocol(),
            broadcast_protocol(),
            flock_of_birds_protocol(4),
            flock_of_birds_protocol(5),
            flock_of_birds_threshold_n_protocol(5),
            remainder_protocol([1], 3, 1),
            remainder_protocol([1], 5, 3),
            threshold_table_protocol(2),
            coin_flip_protocol(),
            oscillating_majority_protocol(),
            exclusive_majority_protocol(),
        ]
        hashes = [protocol_content_hash(protocol) for protocol in protocols]
        assert len(set(hashes)) == len(protocols)

    def test_hash_is_stable_across_calls(self):
        protocol = flock_of_birds_protocol(4)
        assert protocol_content_hash(protocol) == protocol_content_hash(protocol)
        assert len(protocol_content_hash(protocol)) == 64


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = ResultCache.entry_key("abc", ENGINE_VERSION, {"check": "ws3"})
        assert cache.get(key) is None
        cache.put(key, {"is_ws3": True})
        assert cache.get(key) == {"is_ws3": True}
        assert cache.statistics == {"hits": 1, "misses": 1, "stores": 1, "corrupt": 0}

    def test_engine_version_partitions_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        options = {"check": "ws3"}
        cache.put(ResultCache.entry_key("abc", "1", options), {"is_ws3": True})
        assert cache.get(ResultCache.entry_key("abc", "2", options)) is None

    def test_options_partition_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(ResultCache.entry_key("abc", "1", {"strategy": "auto"}), {"is_ws3": True})
        assert cache.get(ResultCache.entry_key("abc", "1", {"strategy": "smt"})) is None

    def test_torn_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = ResultCache.entry_key("abc", "1", {})
        (tmp_path / f"{key}.json").write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_torn_entry_is_quarantined_and_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = ResultCache.entry_key("abc", "1", {})
        (tmp_path / f"{key}.json").write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.statistics["corrupt"] == 1
        # The corrupt entry is moved aside (kept for postmortems), so the
        # slot is writable again and the next get is a clean miss.
        assert not (tmp_path / f"{key}.json").exists()
        assert (tmp_path / f"{key}.corrupt").exists()
        cache.put(key, {"is_ws3": True})
        assert cache.get(key) == {"is_ws3": True}

    def test_entries_are_valid_json_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = ResultCache.entry_key("abc", "1", {})
        cache.put(key, {"is_ws3": False, "nested": {"refinements": 3}})
        stored = json.loads((tmp_path / f"{key}.json").read_text(encoding="utf-8"))
        assert stored["nested"]["refinements"] == 3
