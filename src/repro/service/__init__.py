"""Job-oriented verification service: submit, observe, cancel.

The :class:`VerificationService` wraps the engine + property-checker stack
behind an asynchronous job API::

    from repro.service import VerificationService

    with VerificationService(jobs=4) as service:
        handle = service.submit(protocol, properties=["ws3"], priority=5)
        handle.subscribe(lambda event: print(event.to_dict()))
        handle.wait()
        report = handle.result()       # a lossless VerificationReport

Jobs are scheduled priority-first over one shared worker pool and result
cache; every stage emits a typed, JSON-round-trippable
:class:`~repro.service.events.ProgressEvent` (see that module for the
variants), delivered through subscriber callbacks and the blocking
:meth:`~repro.service.jobs.JobHandle.events` iterator.  ``repro-verify
serve`` exposes the same API to external processes as a stdin/stdout
JSON-lines daemon.

``repro.api.Verifier.check``/``check_many`` are thin synchronous facades
over this service, so verdicts are identical between the two surfaces.

This ``__init__`` resolves its exports lazily (PEP 562): the engine layer
imports :mod:`repro.service.events` at module load, and a eager package
import here would close an import cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "VerificationService": "repro.service.service",
    "JobJournal": "repro.service.journal",
    "JobHandle": "repro.service.jobs",
    "JobStatus": "repro.service.jobs",
    "JobFailedError": "repro.service.jobs",
    "JobNotFinished": "repro.service.jobs",
    "JobCancelledError": "repro.engine.monitor",
    "ProgressEvent": "repro.service.events",
    "EVENT_TYPES": "repro.service.events",
    "event_from_dict": "repro.service.events",
    "describe_event": "repro.service.events",
    "ServeSession": "repro.service.serve",
    "OverloadedError": "repro.service.serve",
    "NetworkServer": "repro.service.net",
    "ServerLimits": "repro.service.net",
    "VerificationClient": "repro.service.client",
    "ClientRetryPolicy": "repro.service.client",
    "JobRouter": "repro.service.router",
    "RouterServer": "repro.service.router",
    "rendezvous_shard": "repro.service.router",
    "split_job_id": "repro.service.router",
    "ReplicaSupervisor": "repro.service.replicas",
    "ReplicaError": "repro.service.replicas",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
