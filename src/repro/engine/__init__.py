"""Parallel, cache-aware verification engine.

The verification layer decomposes every WS³ check into many independent
subproblems — terminal-pattern pairs for StrongConsensus/correctness,
partition-search strategies for LayeredTermination, whole protocols for
batch sweeps.  This package schedules those subproblems over a pool of
worker processes:

* :mod:`repro.engine.subproblem` — the picklable :class:`Subproblem` /
  :class:`SubproblemResult` envelope plus portable encodings of refinement
  steps and partitions;
* :mod:`repro.engine.worker` — the worker-process entry point (per-process
  protocol/solver caches, kind dispatch);
* :mod:`repro.engine.scheduler` — the process-pool scheduler: deterministic
  wave execution, cross-worker sharing of learned trap/siphon refinements
  via the coordinator, early cancellation, and a serial in-process fallback;
* :mod:`repro.engine.retry` — the :class:`RetryPolicy` knobs (retries,
  exponential backoff, per-subproblem and per-job deadlines) that make wave
  execution survive worker deaths and hung solvers;
* :mod:`repro.engine.cache` — the content-addressed protocol hash and the
  on-disk result cache keyed by it;
* :mod:`repro.engine.monitor` — thread-local job instrumentation: progress
  events and cooperative cancellation for the verification service (wave
  boundaries are the engine's cancellation checkpoints, and envelopes carry
  the job id of the thread that built them);
* :mod:`repro.engine.batch` — ``run_batch``: fan a set of protocols over
  the pool, with verified instances served from the result cache as
  lossless :class:`~repro.api.report.VerificationReport` payloads (the
  back end of :meth:`repro.api.Verifier.check_many`; the deprecated
  ``verify_many`` shim lives here too).
"""

from repro.engine.cache import ResultCache, canonical_protocol_dict, protocol_content_hash
from repro.engine.monitor import JobCancelledError, JobDeadlineExceeded
from repro.engine.retry import DEFAULT_RETRY, NO_RETRY, RetryPolicy
from repro.engine.scheduler import ENGINE_VERSION, EngineError, VerificationEngine
from repro.engine.subproblem import Subproblem, SubproblemResult
from repro.engine.batch import BatchItem, BatchResult, batch_cache_options, run_batch, verify_many

__all__ = [
    "BatchItem",
    "BatchResult",
    "DEFAULT_RETRY",
    "ENGINE_VERSION",
    "EngineError",
    "JobCancelledError",
    "JobDeadlineExceeded",
    "NO_RETRY",
    "ResultCache",
    "RetryPolicy",
    "Subproblem",
    "SubproblemResult",
    "VerificationEngine",
    "batch_cache_options",
    "canonical_protocol_dict",
    "protocol_content_hash",
    "run_batch",
    "verify_many",
]
