"""Shared pytest fixtures: small protocols, plus a thread/fd leak detector."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import PopulationProtocol, Transition


def _open_fd_count() -> int:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - non-Linux
        return 0


@pytest.fixture
def no_leaks():
    """Assert the test returns thread and fd counts to their baseline.

    Server teardown is asynchronous (handler threads notice a closed socket,
    pump threads flush), so the check retries until a deadline before
    failing.  File descriptors get a small slack: the interpreter itself
    opens and caches a few (e.g. imports) independent of the code under
    test.
    """
    thread_baseline = threading.active_count()
    fd_baseline = _open_fd_count()
    yield
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if threading.active_count() <= thread_baseline and _open_fd_count() <= fd_baseline + 4:
            return
        time.sleep(0.05)
    leaked = [thread.name for thread in threading.enumerate()]
    assert threading.active_count() <= thread_baseline, f"leaked threads: {leaked}"
    assert _open_fd_count() <= fd_baseline + 4, "leaked file descriptors"


def build_majority_protocol() -> PopulationProtocol:
    """The majority protocol of Example 1, built by hand (no library import).

    States A, B, a, b; computes "#B >= #A".
    """
    transitions = [
        Transition.make(("A", "B"), ("a", "b"), name="tAB"),
        Transition.make(("A", "b"), ("A", "a"), name="tAb"),
        Transition.make(("B", "a"), ("B", "b"), name="tBa"),
        Transition.make(("b", "a"), ("b", "b"), name="tba"),
    ]
    return PopulationProtocol(
        states=["A", "B", "a", "b"],
        transitions=transitions,
        input_alphabet=["A", "B"],
        input_map={"A": "A", "B": "B"},
        output_map={"A": 0, "a": 0, "B": 1, "b": 1},
        name="majority(handmade)",
    )


@pytest.fixture
def majority_protocol() -> PopulationProtocol:
    return build_majority_protocol()


@pytest.fixture
def broadcast_protocol() -> PopulationProtocol:
    """One-transition broadcast protocol: (1, 0) -> (1, 1); computes x_1 >= 1."""
    return PopulationProtocol(
        states=[0, 1],
        transitions=[Transition.make((1, 0), (1, 1), name="spread")],
        input_alphabet=["zero", "one"],
        input_map={"zero": 0, "one": 1},
        output_map={0: 0, 1: 1},
        name="broadcast(handmade)",
    )


@pytest.fixture
def config() -> Multiset:
    return Multiset({"A": 2, "B": 3})
