"""Correctness of a (well-specified) protocol against a predicate.

Section 6 of the paper describes an extension of the well-specification
check: *given* a protocol that belongs to WS³ and a predicate φ over its
inputs, check that the protocol actually computes φ.  The constraint system
asks for an input ``X`` and a terminal configuration ``C`` potentially
reachable from ``I(X)`` such that ``O(C) ≠ φ(X)``; if no such pair exists
(after trap/siphon refinement) the protocol is correct.

Predicates must offer the small interface implemented by
:mod:`repro.presburger.predicates`:

* ``formula(input_vars)`` — a :class:`repro.smtlite.formula.Formula` saying
  "φ holds for the input whose symbol counts are ``input_vars``";
* ``negation_formula(input_vars)`` — the same for ¬φ;
* ``evaluate(input_population)`` — concrete evaluation (used by tests and by
  the explicit-state baseline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol as TypingProtocol

from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import PopulationProtocol
from repro.smtlite.formula import Formula, conjunction
from repro.smtlite.solver import Solver, SolverStatus
from repro.smtlite.terms import LinearExpr
from repro.verification.results import CorrectnessCounterexample, RefinementStep
from repro.verification.strong_consensus import (
    _ConstraintBuilder,
    find_refinement,
    terminal_support_patterns,
)


class PredicateLike(TypingProtocol):
    """Structural interface required of predicates."""

    def formula(self, input_vars: dict) -> Formula: ...

    def negation_formula(self, input_vars: dict) -> Formula: ...

    def evaluate(self, input_population) -> bool: ...


@dataclass
class CorrectnessResult:
    """Outcome of the correctness check."""

    holds: bool
    counterexample: CorrectnessCounterexample | None = None
    refinements: list[RefinementStep] = field(default_factory=list)
    statistics: dict = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


def check_correctness(
    protocol: PopulationProtocol,
    predicate: PredicateLike,
    theory: str = "auto",
    max_refinements: int = 10_000,
) -> CorrectnessResult:
    """Check that a protocol computes ``predicate``.

    The check is sound for protocols in WS³: a well-specified silent protocol
    stabilises, for every input, to the output of some reachable terminal
    configuration, and every reachable terminal configuration is potentially
    reachable, so if no potentially-reachable terminal configuration carries
    the wrong output the protocol computes the predicate.
    """
    start = time.perf_counter()
    refinements: list[RefinementStep] = []
    statistics = {"iterations": 0, "traps": 0, "siphons": 0, "solver_instances": 1}

    # One persistent solver for both output directions and all terminal
    # support patterns (cf. the StrongConsensus check): the input encoding,
    # flow variables and non-negativity constraints are asserted once, the
    # per-direction/per-pattern constraints live in push/pop scopes, and
    # lemmas learned while refuting one pattern carry over to the next.
    builder = _ConstraintBuilder(protocol)
    solver = Solver(theory=theory)
    input_vars = {
        symbol: solver.int_var(f"inp_{index}", lower=0)
        for index, symbol in enumerate(protocol.input_alphabet)
    }
    x1 = builder.flow_vars("x1")

    # The initial configuration is the image of the input under I, expressed
    # directly over the input variables; the flow equations are likewise
    # substituted away (c1 is an expression over the input and the flow).
    solver.add(LinearExpr.sum_of(input_vars.values()) >= 2)
    c0 = {}
    for state in builder.states:
        symbols = [symbol for symbol in protocol.input_alphabet if protocol.input_map[symbol] == state]
        if symbols:
            c0[state] = LinearExpr.sum_of(input_vars[symbol] for symbol in symbols)
        else:
            c0[state] = LinearExpr.constant_expr(0)
    c1 = builder.derived_config(c0, x1)
    solver.add(builder.non_negative(c1))

    patterns = terminal_support_patterns(protocol)
    for expected_output in (1, 0):
        wrong_output = 1 - expected_output
        for pattern in patterns:
            if not pattern.admits_output(protocol, wrong_output):
                continue
            statistics["pattern_pairs"] = statistics.get("pattern_pairs", 0) + 1
            solver.push()
            try:
                outcome = _solve_pattern(
                    protocol,
                    builder,
                    solver,
                    (input_vars, c0, c1, x1),
                    predicate,
                    expected_output,
                    pattern,
                    max_refinements,
                    refinements,
                    statistics,
                )
            finally:
                solver.pop()
            if outcome is not None:
                statistics["solver"] = dict(solver.statistics)
                statistics["time"] = time.perf_counter() - start
                return CorrectnessResult(
                    holds=False,
                    counterexample=outcome,
                    refinements=refinements,
                    statistics=statistics,
                )

    statistics["solver"] = dict(solver.statistics)
    statistics["time"] = time.perf_counter() - start
    return CorrectnessResult(holds=True, refinements=refinements, statistics=statistics)


def _solve_pattern(
    protocol: PopulationProtocol,
    builder: _ConstraintBuilder,
    solver: Solver,
    variables: tuple,
    predicate: PredicateLike,
    expected_output: int,
    pattern,
    max_refinements: int,
    refinements: list[RefinementStep],
    statistics: dict,
) -> CorrectnessCounterexample | None:
    """Run the refinement loop for one pattern inside an open solver scope."""
    input_vars, c0, c1, x1 = variables
    solver.add(builder.pattern(c1, pattern))
    # Wrong output: some populated state disagrees with the expected value.
    solver.add(builder.has_output(c1, 1 - expected_output))
    if expected_output == 1:
        solver.add(predicate.formula(input_vars))
    else:
        solver.add(predicate.negation_formula(input_vars))
    # Trap/siphon constraints discovered for earlier patterns are valid here
    # too (they only reference the shared flow and configurations).
    for step in refinements:
        solver.add(builder.refinement_constraint(step, c0, c1, x1, target_support=pattern.allowed))

    for iteration in range(max_refinements):
        statistics["iterations"] += 1
        result = solver.check()
        if result.status is SolverStatus.UNSAT:
            return None
        if result.status is SolverStatus.UNKNOWN:
            raise RuntimeError("the constraint solver could not decide the correctness query")

        model = result.model
        initial = builder.configuration_from_model(model, c0)
        terminal = builder.configuration_from_model(model, c1)
        flow = builder.flow_from_model(model, x1)
        step = find_refinement(protocol, initial, terminal, flow)
        if step is None:
            input_population = Multiset(
                {
                    symbol: model.value(variable)
                    for symbol, variable in input_vars.items()
                    if model.value(variable) > 0
                }
            )
            return CorrectnessCounterexample(
                input_population=input_population,
                initial=initial,
                terminal=terminal,
                flow=flow,
                expected_output=expected_output,
            )
        step = RefinementStep(kind=step.kind, states=step.states, iteration=iteration)
        refinements.append(step)
        statistics["traps" if step.kind == "trap" else "siphons"] += 1
        solver.add(builder.refinement_constraint(step, c0, c1, x1, target_support=pattern.allowed))
    raise RuntimeError(
        f"correctness refinement did not converge within {max_refinements} iterations"
    )
