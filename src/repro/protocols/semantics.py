"""Operational semantics of population protocols (Section 2 of the paper).

This module implements the step relation ``C -> C'``, reachability over the
(finite, for a fixed population size) configuration graph, and the notions of
terminal and consensus configurations.  It is the foundation both for the
simulator and for the explicit-state baseline verifier
(:mod:`repro.verification.explicit`).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import Configuration, PopulationProtocol, ProtocolError, Transition


class ExplorationLimitError(RuntimeError):
    """Raised when a reachability exploration exceeds its configuration budget."""


def enabled_transitions(
    protocol: PopulationProtocol, configuration: Configuration
) -> list[Transition]:
    """Non-silent transitions enabled at ``configuration``.

    Silent transitions are always implicitly enabled (every configuration has
    at least two agents) and are never returned.
    """
    candidates: set[Transition] = set()
    for state in configuration.support():
        candidates.update(protocol.transitions_touching(state))
    return [t for t in candidates if t.enabled_at(configuration)]


def fire(configuration: Configuration, transition: Transition) -> Configuration:
    """Single step ``C --t--> C'``."""
    return transition.fire(configuration)


def fire_sequence(
    configuration: Configuration, transitions: Sequence[Transition]
) -> Configuration:
    """Fire a sequence of transitions, returning the final configuration."""
    current = configuration
    for transition in transitions:
        current = transition.fire(current)
    return current


def successors(
    protocol: PopulationProtocol, configuration: Configuration
) -> dict[Configuration, list[Transition]]:
    """Distinct successor configurations, each with the transitions producing it."""
    result: dict[Configuration, list[Transition]] = {}
    for transition in enabled_transitions(protocol, configuration):
        successor = transition.fire(configuration)
        result.setdefault(successor, []).append(transition)
    return result


def is_terminal(protocol: PopulationProtocol, configuration: Configuration) -> bool:
    """True if every transition enabled at the configuration is silent."""
    return not enabled_transitions(protocol, configuration)


def is_consensus(protocol: PopulationProtocol, configuration: Configuration) -> bool:
    """True if all populated states agree on the output."""
    outputs = {protocol.output_map[state] for state in configuration.support()}
    return len(outputs) == 1


def output_of(protocol: PopulationProtocol, configuration: Configuration) -> int | None:
    """The common output of a consensus configuration, or ``None`` otherwise."""
    outputs = {protocol.output_map[state] for state in configuration.support()}
    if len(outputs) == 1:
        return next(iter(outputs))
    return None


@dataclass
class ReachabilityGraph:
    """The configuration graph reachable from an initial configuration.

    Attributes
    ----------
    root:
        The initial configuration of the exploration.
    edges:
        Adjacency mapping: for every explored configuration, the set of
        successor configurations reachable in one non-silent step.
    complete:
        ``False`` when the exploration was truncated by ``max_configurations``.
    """

    root: Configuration
    edges: dict[Configuration, frozenset[Configuration]]
    complete: bool = True

    @property
    def configurations(self) -> frozenset[Configuration]:
        return frozenset(self.edges)

    def __len__(self) -> int:
        return len(self.edges)

    def terminal_configurations(self) -> frozenset[Configuration]:
        """Configurations with no outgoing non-silent step."""
        return frozenset(c for c, succ in self.edges.items() if not succ)

    def bottom_sccs(self) -> list[frozenset[Configuration]]:
        """Bottom strongly connected components of the graph.

        Under the paper's (global) fairness condition, every fair execution
        eventually enters a bottom SCC and visits all of its configurations
        infinitely often, so the bottom SCCs characterise the possible
        long-run behaviours for a fixed input.
        """
        sccs = strongly_connected_components(self.edges)
        component_of: dict[Configuration, int] = {}
        for index, component in enumerate(sccs):
            for configuration in component:
                component_of[configuration] = index
        bottom: list[frozenset[Configuration]] = []
        for index, component in enumerate(sccs):
            is_bottom = True
            for configuration in component:
                for successor in self.edges[configuration]:
                    if component_of[successor] != index:
                        is_bottom = False
                        break
                if not is_bottom:
                    break
            if is_bottom:
                bottom.append(frozenset(component))
        return bottom


def strongly_connected_components(
    edges: dict[Configuration, frozenset[Configuration]]
) -> list[list[Configuration]]:
    """Iterative Tarjan SCC algorithm over an adjacency mapping."""
    index_counter = 0
    indices: dict[Configuration, int] = {}
    lowlinks: dict[Configuration, int] = {}
    on_stack: set[Configuration] = set()
    stack: list[Configuration] = []
    result: list[list[Configuration]] = []

    for start in edges:
        if start in indices:
            continue
        work: list[tuple[Configuration, Iterator[Configuration]]] = [(start, iter(edges[start]))]
        indices[start] = lowlinks[start] = index_counter
        index_counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, neighbours = work[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in indices:
                    indices[neighbour] = lowlinks[neighbour] = index_counter
                    index_counter += 1
                    stack.append(neighbour)
                    on_stack.add(neighbour)
                    work.append((neighbour, iter(edges[neighbour])))
                    advanced = True
                    break
                if neighbour in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[neighbour])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: list[Configuration] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


def reachability_graph(
    protocol: PopulationProtocol,
    initial: Configuration,
    max_configurations: int = 100_000,
    restrict_to: Iterable[Transition] | None = None,
) -> ReachabilityGraph:
    """Breadth-first exploration of the configurations reachable from ``initial``.

    Parameters
    ----------
    max_configurations:
        Safety budget; if exceeded the returned graph has ``complete=False``.
    restrict_to:
        Optional subset of transitions (exploring ``P[S]`` instead of ``P``).
    """
    if not protocol.is_configuration(initial):
        raise ProtocolError(f"{initial.pretty()} is not a configuration of {protocol.name}")
    allowed = None if restrict_to is None else frozenset(restrict_to)
    edges: dict[Configuration, frozenset[Configuration]] = {}
    queue: deque[Configuration] = deque([initial])
    seen: set[Configuration] = {initial}
    complete = True
    while queue:
        current = queue.popleft()
        succ: set[Configuration] = set()
        for transition in enabled_transitions(protocol, current):
            if allowed is not None and transition not in allowed:
                continue
            successor = transition.fire(current)
            succ.add(successor)
            if successor not in seen:
                if len(seen) >= max_configurations:
                    complete = False
                    continue
                seen.add(successor)
                queue.append(successor)
        edges[current] = frozenset(s for s in succ if s in seen)
    return ReachabilityGraph(root=initial, edges=edges, complete=complete)


def reachable_configurations(
    protocol: PopulationProtocol,
    initial: Configuration,
    max_configurations: int = 100_000,
) -> frozenset[Configuration]:
    """The set of configurations reachable from ``initial``."""
    return reachability_graph(protocol, initial, max_configurations).configurations


def reachable_terminal_configurations(
    protocol: PopulationProtocol,
    initial: Configuration,
    max_configurations: int = 100_000,
) -> frozenset[Configuration]:
    """Terminal configurations reachable from ``initial``."""
    graph = reachability_graph(protocol, initial, max_configurations)
    if not graph.complete:
        raise ExplorationLimitError(
            f"exploration from {initial.pretty()} exceeded {max_configurations} configurations"
        )
    return graph.terminal_configurations()


def is_reachable(
    protocol: PopulationProtocol,
    source: Configuration,
    target: Configuration,
    max_configurations: int = 100_000,
) -> bool:
    """Decide ``source ->* target`` by explicit exploration (fixed population)."""
    if source == target:
        return True
    if source.size() != target.size():
        return False
    graph = reachability_graph(protocol, source, max_configurations)
    if target in graph.configurations:
        return True
    if not graph.complete:
        raise ExplorationLimitError(
            f"exploration from {source.pretty()} exceeded {max_configurations} configurations"
        )
    return False


def enumerate_inputs(
    protocol: PopulationProtocol, size: int
) -> Iterator[Multiset]:
    """Enumerate all inputs (populations over the alphabet) of a given size."""
    symbols = list(protocol.input_alphabet)

    def recurse(index: int, remaining: int, current: dict) -> Iterator[Multiset]:
        if index == len(symbols) - 1:
            final = dict(current)
            if remaining > 0:
                final[symbols[index]] = remaining
            yield Multiset(final)
            return
        for count in range(remaining + 1):
            nxt = dict(current)
            if count > 0:
                nxt[symbols[index]] = count
            yield from recurse(index + 1, remaining - count, nxt)

    if size < 2:
        raise ProtocolError("populations must contain at least two agents")
    yield from recurse(0, size, {})
