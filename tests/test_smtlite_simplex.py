"""Tests for the exact simplex and the branch-and-bound integer solver.

The exact solver is cross-checked against scipy's HiGHS LP solver on random
instances (hypothesis) and on hand-written corner cases.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import optimize

from repro.smtlite.branch_and_bound import ILPStatus, solve_integer_feasibility
from repro.smtlite.simplex import LinearProgram, LPStatus


class TestSimplexBasics:
    def test_simple_maximization(self):
        lp = LinearProgram()
        lp.add_variable("x", lower=0)
        lp.add_variable("y", lower=0)
        lp.add_constraint({"x": 1, "y": 1}, "<=", 4)
        lp.add_constraint({"x": 1, "y": 3}, "<=", 6)
        lp.set_objective({"x": 1, "y": 2}, maximize=True)
        solution = lp.solve()
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective == Fraction(5)  # attained at x=3, y=1

    def test_simple_minimization_with_equalities(self):
        lp = LinearProgram()
        lp.add_constraint({"x": 1, "y": 1}, "==", 10)
        lp.add_constraint({"x": 1}, ">=", 3)
        lp.set_objective({"y": 1})
        solution = lp.solve()
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective == Fraction(0)
        assert solution.values["x"] == Fraction(10)

    def test_infeasible(self):
        lp = LinearProgram()
        lp.add_constraint({"x": 1}, "<=", 1)
        lp.add_constraint({"x": 1}, ">=", 3)
        solution = lp.solve()
        assert solution.status is LPStatus.INFEASIBLE
        assert solution.infeasible_rows is not None

    def test_unbounded(self):
        lp = LinearProgram()
        lp.add_variable("x", lower=0)
        lp.set_objective({"x": 1}, maximize=True)
        solution = lp.solve()
        assert solution.status is LPStatus.UNBOUNDED

    def test_free_variable(self):
        lp = LinearProgram()
        lp.add_variable("x", lower=None)
        lp.add_constraint({"x": 1}, "<=", -5)
        lp.set_objective({"x": 1}, maximize=True)
        solution = lp.solve()
        assert solution.status is LPStatus.OPTIMAL
        assert solution.values["x"] == Fraction(-5)

    def test_upper_bounded_variable(self):
        lp = LinearProgram()
        lp.add_variable("x", lower=0, upper=3)
        lp.set_objective({"x": 1}, maximize=True)
        solution = lp.solve()
        assert solution.status is LPStatus.OPTIMAL
        assert solution.values["x"] == Fraction(3)

    def test_upper_bound_only_variable(self):
        lp = LinearProgram()
        lp.add_variable("x", lower=None, upper=2)
        lp.add_constraint({"x": 1}, ">=", -7)
        lp.set_objective({"x": 1})
        solution = lp.solve()
        assert solution.status is LPStatus.OPTIMAL
        assert solution.values["x"] == Fraction(-7)

    def test_empty_variable_domain_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ValueError):
            lp.add_variable("x", lower=3, upper=1)

    def test_exact_fractions(self):
        lp = LinearProgram()
        lp.add_constraint({"x": 3}, "==", 1)
        lp.set_objective({"x": 1})
        solution = lp.solve()
        assert solution.values["x"] == Fraction(1, 3)

    def test_feasibility_only_no_objective(self):
        lp = LinearProgram()
        lp.add_constraint({"x": 2, "y": 3}, "==", 12)
        lp.add_constraint({"x": 1}, ">=", 1)
        solution = lp.solve()
        assert solution.status is LPStatus.OPTIMAL
        values = solution.values
        assert 2 * values["x"] + 3 * values["y"] == 12

    def test_flow_cycle_detection_lp(self):
        # The LP used by Proposition 6: does a non-negative, non-zero flow
        # with zero net effect exist?  For the majority protocol the full set
        # of transitions has one (tAb + tBa cancel out), which is exactly why
        # the protocol needs two layers; the first layer alone has none.
        deltas = {
            "tAB": {"A": -1, "B": -1, "a": 1, "b": 1},
            "tAb": {"b": -1, "a": 1},
            "tBa": {"a": -1, "b": 1},
            "tba": {"a": -1, "b": 1},
        }

        def max_flow(names):
            lp = LinearProgram()
            for name in names:
                lp.add_variable(name, lower=0, upper=1)
            for state in ["A", "B", "a", "b"]:
                coefficients = {name: deltas[name].get(state, 0) for name in names}
                lp.add_constraint(coefficients, "==", 0)
            lp.set_objective({name: 1 for name in names}, maximize=True)
            solution = lp.solve()
            assert solution.status is LPStatus.OPTIMAL
            return solution.objective

        assert max_flow(["tAB", "tAb", "tBa", "tba"]) > 0
        assert max_flow(["tAB", "tAb"]) == 0
        assert max_flow(["tBa", "tba"]) == 0


def random_lp_strategy():
    entry = st.integers(min_value=-4, max_value=4)
    return st.tuples(
        st.integers(min_value=1, max_value=3),  # number of variables
        st.integers(min_value=1, max_value=4),  # number of constraints
        st.lists(entry, min_size=30, max_size=30),
        st.lists(st.integers(min_value=-6, max_value=6), min_size=4, max_size=4),
        st.lists(st.sampled_from(["<=", ">=", "=="]), min_size=4, max_size=4),
        st.lists(entry, min_size=3, max_size=3),
    )


class TestSimplexAgainstScipy:
    @given(random_lp_strategy())
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_highs(self, data):
        num_vars, num_cons, flat_matrix, rhs_values, senses, objective_values = data
        lp = LinearProgram()
        variables = [f"v{i}" for i in range(num_vars)]
        for name in variables:
            lp.add_variable(name, lower=0)
        a_ub, b_ub, a_eq, b_eq = [], [], [], []
        for row in range(num_cons):
            coefficients = {
                variables[col]: flat_matrix[row * num_vars + col] for col in range(num_vars)
            }
            sense = senses[row]
            rhs = rhs_values[row]
            lp.add_constraint(coefficients, sense, rhs)
            dense = [coefficients[name] for name in variables]
            if sense == "<=":
                a_ub.append(dense)
                b_ub.append(rhs)
            elif sense == ">=":
                a_ub.append([-value for value in dense])
                b_ub.append(-rhs)
            else:
                a_eq.append(dense)
                b_eq.append(rhs)
        objective = {name: objective_values[index] for index, name in enumerate(variables)}
        lp.set_objective(objective)

        ours = lp.solve()
        reference = optimize.linprog(
            c=[objective[name] for name in variables],
            A_ub=np.array(a_ub) if a_ub else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq) if a_eq else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=[(0, None)] * num_vars,
            method="highs",
        )
        if reference.status == 2:
            assert ours.status is LPStatus.INFEASIBLE
        elif reference.status == 3:
            assert ours.status is LPStatus.UNBOUNDED
        elif reference.status == 0:
            assert ours.status is LPStatus.OPTIMAL
            assert abs(float(ours.objective) - reference.fun) < 1e-6


class TestBranchAndBound:
    def test_integer_point_found(self):
        result = solve_integer_feasibility(
            constraints=[({"x": 2, "y": 2}, "==", 5)],
            bounds={"x": (0, None), "y": (0, None)},
        )
        # 2x + 2y = 5 has no integer solution.
        assert result.status is ILPStatus.INFEASIBLE

    def test_feasible_instance(self):
        result = solve_integer_feasibility(
            constraints=[({"x": 2, "y": 3}, "==", 12), ({"x": 1}, ">=", 1)],
            bounds={"x": (0, None), "y": (0, None)},
        )
        assert result.status is ILPStatus.FEASIBLE
        values = result.values
        assert 2 * values["x"] + 3 * values["y"] == 12
        assert values["x"] >= 1

    def test_fractional_vertex_forces_branching(self):
        result = solve_integer_feasibility(
            constraints=[
                ({"x": 2}, ">=", 1),
                ({"x": 2}, "<=", 3),
            ],
            bounds={"x": (0, None)},
        )
        assert result.status is ILPStatus.FEASIBLE
        assert result.values["x"] == 1
        assert result.nodes_explored >= 1

    def test_infeasible_lp_relaxation_gives_core(self):
        result = solve_integer_feasibility(
            constraints=[({"x": 1}, ">=", 5), ({"x": 1}, "<=", 2), ({"y": 1}, ">=", 0)],
            bounds={"x": (0, None), "y": (0, None)},
        )
        assert result.status is ILPStatus.INFEASIBLE
        assert result.infeasible_rows is not None
        assert set(result.infeasible_rows) <= {0, 1, 2}

    def test_bounded_box_infeasible(self):
        result = solve_integer_feasibility(
            constraints=[({"x": 3}, "==", 7)],
            bounds={"x": (0, 10)},
        )
        assert result.status is ILPStatus.INFEASIBLE

    def test_negative_lower_bounds(self):
        result = solve_integer_feasibility(
            constraints=[({"x": 1, "y": 1}, "==", -3), ({"x": 1}, "<=", -1)],
            bounds={"x": (None, None), "y": (0, None)},
        )
        assert result.status is ILPStatus.FEASIBLE
        assert result.values["x"] + result.values["y"] == -3

    @pytest.mark.parametrize("seed", range(8))
    def test_against_scipy_milp(self, seed):
        rng = np.random.RandomState(seed)
        num_vars, num_cons = 3, 3
        matrix = rng.randint(-3, 4, size=(num_cons, num_vars))
        rhs = rng.randint(-4, 8, size=num_cons)
        constraints = [
            ({f"v{j}": int(matrix[i, j]) for j in range(num_vars)}, "<=", int(rhs[i]))
            for i in range(num_cons)
        ]
        bounds = {f"v{j}": (0, 6) for j in range(num_vars)}
        ours = solve_integer_feasibility(constraints, bounds)

        reference = optimize.milp(
            c=np.zeros(num_vars),
            constraints=[optimize.LinearConstraint(matrix.astype(float), -np.inf, rhs.astype(float))],
            integrality=np.ones(num_vars),
            bounds=optimize.Bounds(np.zeros(num_vars), np.full(num_vars, 6.0)),
        )
        assert (ours.status is ILPStatus.FEASIBLE) == bool(reference.success)
        if ours.status is ILPStatus.FEASIBLE:
            for (coefficients, sense, bound) in constraints:
                total = sum(coefficients[name] * ours.values[name] for name in coefficients)
                assert total <= bound
