"""The majority protocol of Angluin et al. [3] (Example 1 of the paper).

Agents start in state ``A`` or ``B``; the protocol decides whether at least
as many agents started in ``B`` as in ``A`` (ties go to ``B``).  States
``a``/``b`` are "passive" followers holding only an opinion.
"""

from __future__ import annotations

from repro.presburger.predicates import ThresholdPredicate
from repro.protocols.protocol import OrderedPartition, PopulationProtocol, Transition


def majority_protocol() -> PopulationProtocol:
    """Build the 4-state majority protocol (predicate ``#B >= #A``).

    The partition hint is the two-layer ordered partition from Example 5 of
    the paper: active-vs-active and active-vs-passive interactions first,
    passive clean-up second.
    """
    t_ab = Transition.make(("A", "B"), ("a", "b"), name="tAB")
    t_a_small_b = Transition.make(("A", "b"), ("A", "a"), name="tAb")
    t_b_small_a = Transition.make(("B", "a"), ("B", "b"), name="tBa")
    t_small_ba = Transition.make(("b", "a"), ("b", "b"), name="tba")

    # Predicate "#B >= #A", i.e. #A - #B < 1.
    predicate = ThresholdPredicate({"A": 1, "B": -1}, 1)

    return PopulationProtocol(
        states=["A", "B", "a", "b"],
        transitions=[t_ab, t_a_small_b, t_b_small_a, t_small_ba],
        input_alphabet=["A", "B"],
        input_map={"A": "A", "B": "B"},
        output_map={"A": 0, "a": 0, "B": 1, "b": 1},
        name="majority",
        partition_hint=OrderedPartition.of([t_ab, t_a_small_b], [t_b_small_a, t_small_ba]),
        metadata={"predicate": predicate, "source": "Angluin et al. [3]; Example 1"},
    )
