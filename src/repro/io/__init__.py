"""Input/output helpers: JSON serialisation of protocols, artifacts, reports.

* :mod:`repro.io.serialization` — protocol JSON format plus the shared
  artifact codecs (certificates, counterexamples, refinement steps) used by
  the report types, the engine envelopes and the result cache;
* :mod:`repro.io.loading` — resolve protocol specs (family names,
  ``family:parameter`` strings, JSON file paths) into protocol objects,
  raising :class:`~repro.io.loading.ProtocolLoadError` on bad input so the
  loaders are usable programmatically.
"""

from repro.io.loading import ProtocolLoadError, load_protocol_file, resolve_protocol_spec
from repro.io.serialization import (
    certificate_from_dict,
    certificate_to_dict,
    counterexample_from_dict,
    counterexample_to_dict,
    decode_flow,
    decode_multiset,
    decode_partition,
    decode_ranking,
    decode_transition,
    encode_flow,
    encode_multiset,
    encode_partition,
    encode_ranking,
    encode_transition,
    protocol_from_dict,
    protocol_from_json,
    protocol_to_dict,
    protocol_to_json,
    refinement_step_from_dict,
    refinement_step_to_dict,
)

__all__ = [
    "ProtocolLoadError",
    "certificate_from_dict",
    "certificate_to_dict",
    "counterexample_from_dict",
    "counterexample_to_dict",
    "decode_flow",
    "decode_multiset",
    "decode_partition",
    "decode_ranking",
    "decode_transition",
    "encode_flow",
    "encode_multiset",
    "encode_partition",
    "encode_ranking",
    "encode_transition",
    "load_protocol_file",
    "protocol_to_dict",
    "protocol_from_dict",
    "protocol_to_json",
    "protocol_from_json",
    "refinement_step_from_dict",
    "refinement_step_to_dict",
    "resolve_protocol_spec",
]
