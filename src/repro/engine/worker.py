"""Worker-process entry point: solve one subproblem envelope.

``solve_subproblem`` is the single function shipped to the process pool.
It dispatches on the subproblem ``kind`` to the solving routines exposed by
the verification modules, which are imported lazily (the verification layer
imports the engine, not the other way round at module load time).

Decoded protocols are cached per process keyed by their content hash, so a
worker that solves many subproblems of the same protocol — the common case:
one pattern pair per subproblem, dozens of pairs per protocol — pays the
deserialisation cost once.
"""

from __future__ import annotations

import contextlib
import os
import time

from repro.obs import trace

from repro.engine.subproblem import (
    Subproblem,
    SubproblemResult,
    encode_partition,
)
from repro.io.serialization import protocol_from_dict

#: Per-process cache of decoded protocols, keyed by content hash.  Bounded:
#: a long-lived pool serving thousands of distinct protocols must not grow
#: worker RSS forever (subproblems of one protocol arrive clustered, so a
#: small cache keeps the hit rate at ~100%).
_PROTOCOLS: dict = {}
_MAX_PROTOCOLS = 64

#: Per-process AnalysisContext cache, keyed the same way.  The coordinator
#: ships its already-computed portable artifacts inside the subproblem
#: envelope (``params["context"]``); everything else is computed lazily,
#: once per protocol per worker process, and shared across all the
#: subproblems of that protocol the process solves.
_CONTEXTS: dict = {}


def _protocol_for(subproblem: Subproblem):
    protocol = _PROTOCOLS.get(subproblem.protocol_key)
    if protocol is None:
        protocol = protocol_from_dict(subproblem.protocol_data)
        if len(_PROTOCOLS) >= _MAX_PROTOCOLS:
            evicted = next(iter(_PROTOCOLS))
            _PROTOCOLS.pop(evicted)
            # Evict the *same* protocol's context: a context must never
            # outlive the protocol object its artifacts were built from.
            _CONTEXTS.pop(evicted, None)
        _PROTOCOLS[subproblem.protocol_key] = protocol
    return protocol


def _context_for(subproblem: Subproblem, protocol):
    from repro.constraints.context import AnalysisContext

    context = _CONTEXTS.get(subproblem.protocol_key)
    if context is None:
        context = AnalysisContext(protocol).seed_protocol_key(subproblem.protocol_key)
        _CONTEXTS[subproblem.protocol_key] = context
    context.hydrate(subproblem.params.get("context"))
    return context


def solve_subproblem(subproblem: Subproblem) -> SubproblemResult:
    """Solve one subproblem and return a picklable result envelope."""
    from repro.testing import faults

    # The chaos suite's main injection site: a plan shipped through the
    # inherited environment (or installed in-process for the inline path)
    # can kill this worker, delay the subproblem past its deadline or raise
    # — before any real work starts, so a killed attempt loses nothing.
    faults.apply_fault(
        faults.fire("worker.solve", kind=subproblem.kind, index=subproblem.index),
        site="worker.solve",
    )
    start = time.perf_counter()
    if subproblem.kind == "poison":
        _poison(subproblem)
    handler = _HANDLERS[subproblem.kind]
    # Tracing: inline runs (no ``trace`` flag) nest directly under the
    # coordinator's open span; the envelope's flag asks for a *fresh* local
    # sink whose spans ride home in ``result.spans``.  The flag must win
    # over ``tracing_active()``: a forked pool worker inherits a copy of
    # the coordinator's sink contextvar, and spans recorded into that copy
    # would be silently lost with the process.
    sink = None
    if subproblem.params.get("trace"):
        sink = trace.TraceSink()
        stack = trace.collect(sink)
    else:
        stack = contextlib.nullcontext()
    with stack:
        with trace.span(
            "subproblem", kind=subproblem.kind, index=subproblem.index
        ) as opened:
            result = handler(subproblem)
            if opened is not None:
                opened.attrs["verdict"] = result.verdict
    if sink is not None:
        result.spans = sink.spans()
    result.statistics.setdefault("time", time.perf_counter() - start)
    result.statistics.setdefault("worker_pid", os.getpid())
    return result


# ----------------------------------------------------------------------
# Kind handlers
# ----------------------------------------------------------------------


def _solve_consensus_pair(subproblem: Subproblem) -> SubproblemResult:
    from repro.verification.strong_consensus import solve_pattern_pair_subproblem

    protocol = _protocol_for(subproblem)
    params = subproblem.params
    outcome = solve_pattern_pair_subproblem(
        protocol,
        pattern_true=params["pattern_true"],
        pattern_false=params["pattern_false"],
        seed_refinements=params["refinements"],
        theory=params.get("theory", "auto"),
        max_refinements=params.get("max_refinements", 10_000),
        protocol_key=subproblem.protocol_key,
        backend=params.get("backend"),
        context=_context_for(subproblem, protocol),
        incremental=params.get("incremental"),
    )
    # The counterexample model is deliberately not shipped: on SAT the
    # coordinator re-derives the canonical one via the serial path, so only
    # the verdict and the discovered refinements matter.
    return SubproblemResult(
        kind=subproblem.kind,
        index=subproblem.index,
        verdict=outcome.verdict,
        data={"refinements": list(outcome.new_refinements)},
        statistics=outcome.statistics,
    )


def _solve_correctness_pattern(subproblem: Subproblem) -> SubproblemResult:
    from repro.verification.correctness import solve_correctness_pattern_subproblem

    protocol = _protocol_for(subproblem)
    params = subproblem.params
    outcome = solve_correctness_pattern_subproblem(
        protocol,
        predicate=params["predicate"],
        expected_output=params["expected_output"],
        pattern=params["pattern"],
        seed_refinements=params["refinements"],
        theory=params.get("theory", "auto"),
        max_refinements=params.get("max_refinements", 10_000),
        backend=params.get("backend"),
        context=_context_for(subproblem, protocol),
        incremental=params.get("incremental"),
    )
    return SubproblemResult(
        kind=subproblem.kind,
        index=subproblem.index,
        verdict=outcome.verdict,
        data={"refinements": list(outcome.new_refinements)},
        statistics=outcome.statistics,
    )


def _solve_termination_strategy(subproblem: Subproblem) -> SubproblemResult:
    from repro.verification.layered_termination import attempt_strategy

    protocol = _protocol_for(subproblem)
    params = subproblem.params
    result = attempt_strategy(
        protocol,
        strategy=params["strategy"],
        max_layers=params.get("max_layers"),
        theory=params.get("theory", "auto"),
        backend=params.get("backend"),
        context=_context_for(subproblem, protocol),
        incremental=params.get("incremental"),
    )
    data = {"strategy": params["strategy"], "reason": result.reason}
    if result.holds and result.certificate is not None:
        data["partition"] = encode_partition(result.certificate.partition)
    return SubproblemResult(
        kind=subproblem.kind,
        index=subproblem.index,
        verdict="holds" if result.holds else "fails",
        data=data,
        statistics=result.statistics,
    )


def _solve_check_protocol(subproblem: Subproblem) -> SubproblemResult:
    """Run the full property pipeline for one protocol, serially, in-worker.

    The result payload is the lossless report dictionary — exactly what the
    coordinator's serial path would produce and what the result cache
    stores — so across-protocol fan-out loses no artifacts.
    """
    from repro.api.options import VerificationOptions
    from repro.api.verifier import Verifier

    protocol = _protocol_for(subproblem)
    params = subproblem.params
    options = VerificationOptions.from_dict(params.get("options", {}))
    options = options.replace(jobs=1, cache_dir=None)
    with Verifier(options) as verifier:
        report = verifier.check(
            protocol,
            properties=params.get("properties", ("ws3",)),
            predicate=params.get("predicate"),
        )
    return SubproblemResult(
        kind=subproblem.kind,
        index=subproblem.index,
        verdict="holds" if report.ok else "fails",
        data={"report": report.to_dict()},
        statistics={"time": report.statistics.get("time", 0.0)},
    )


def _poison(subproblem: Subproblem) -> None:
    """Deliberately damage this worker (used by the fault-injection tests)."""
    mode = subproblem.params.get("mode", "exit")
    if mode == "exit":
        os._exit(17)
    raise RuntimeError("poisoned subproblem")


_HANDLERS = {
    "consensus-pair": _solve_consensus_pair,
    "correctness-pattern": _solve_correctness_pattern,
    "termination-strategy": _solve_termination_strategy,
    "check-protocol": _solve_check_protocol,
}
