"""Immutable multisets over arbitrary hashable elements.

Multisets are the basic data structure of population protocols (Section 2 of
the paper): populations, configurations, and the ``pre`` and ``post`` of
transitions are all multisets.  The class below implements exactly the
operations used throughout the paper:

* addition ``M + M'`` and (partial) subtraction ``M - M'``,
* *monus* (saturating difference) ``M.monus(M')``, written ``M ∸ M'`` in the
  paper,
* componentwise comparison ``M <= M'``,
* support, size, and restriction.

Instances are immutable and hashable, so they can be used as nodes of
reachability graphs and as dictionary keys.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import TypeVar

E = TypeVar("E", bound=Hashable)


class Multiset(Mapping[E, int]):
    """A finite multiset: a mapping from elements to positive multiplicities.

    The representation stores only elements with multiplicity at least one;
    ``multiset[x]`` returns ``0`` for absent elements, mirroring the paper's
    convention that a multiset over ``E`` is a mapping ``E -> N``.

    Examples
    --------
    >>> m = Multiset({"a": 2, "b": 1})
    >>> m["a"], m["c"]
    (2, 0)
    >>> (m + Multiset({"c": 1})).size()
    4
    >>> m.monus(Multiset({"a": 5})) == Multiset({"b": 1})
    True
    """

    __slots__ = ("_counts", "_hash")

    def __init__(self, elements: Mapping[E, int] | Iterable[E] | None = None):
        counts: dict[E, int] = {}
        if elements is None:
            pass
        elif isinstance(elements, Mapping):
            for element, count in elements.items():
                if not isinstance(count, int):
                    raise TypeError(f"multiplicity of {element!r} must be an int, got {count!r}")
                if count < 0:
                    raise ValueError(f"multiplicity of {element!r} must be non-negative, got {count}")
                if count > 0:
                    counts[element] = count
        else:
            for element in elements:
                counts[element] = counts.get(element, 0) + 1
        self._counts = counts
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _from_counts(cls, counts: dict[E, int]) -> "Multiset[E]":
        """Internal constructor for already-validated positive counts.

        The dict is taken over without copying or validation; callers must
        guarantee positive integer multiplicities and exclusive ownership.
        """
        multiset = object.__new__(cls)
        multiset._counts = counts
        multiset._hash = None
        return multiset

    @classmethod
    def empty(cls) -> "Multiset[E]":
        """Return the empty multiset (written ``0`` in the paper)."""
        return cls()

    @classmethod
    def singleton(cls, element: E, count: int = 1) -> "Multiset[E]":
        """Return the multiset containing ``element`` with the given multiplicity."""
        return cls({element: count})

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[E, int]]) -> "Multiset[E]":
        """Build a multiset from ``(element, multiplicity)`` pairs, summing duplicates."""
        counts: dict[E, int] = {}
        for element, count in pairs:
            counts[element] = counts.get(element, 0) + count
        return cls(counts)

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------

    def __getitem__(self, element: E) -> int:
        return self._counts.get(element, 0)

    def __iter__(self) -> Iterator[E]:
        return iter(self._counts)

    def __len__(self) -> int:
        """Number of *distinct* elements (the size of the support)."""
        return len(self._counts)

    def __contains__(self, element: object) -> bool:
        return element in self._counts

    # ------------------------------------------------------------------
    # Multiset-specific queries
    # ------------------------------------------------------------------

    def size(self) -> int:
        """Total number of occurrences, written ``|M|`` in the paper."""
        return sum(self._counts.values())

    def support(self) -> frozenset[E]:
        """The set of elements with positive multiplicity, written ``[[M]]``."""
        return frozenset(self._counts)

    def count(self, element: E) -> int:
        """Multiplicity of ``element`` (0 if absent)."""
        return self._counts.get(element, 0)

    def total(self, elements: Iterable[E]) -> int:
        """Sum of multiplicities over a set of elements, written ``M(P)``."""
        return sum(self._counts.get(element, 0) for element in elements)

    def elements(self) -> Iterator[E]:
        """Iterate over occurrences (each element repeated by its multiplicity)."""
        for element, count in self._counts.items():
            for _ in range(count):
                yield element

    def items_sorted(self) -> list[tuple[E, int]]:
        """Items sorted by ``repr`` of the element, for deterministic output."""
        return sorted(self._counts.items(), key=lambda item: repr(item[0]))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def __add__(self, other: "Multiset[E]") -> "Multiset[E]":
        if not isinstance(other, Multiset):
            return NotImplemented
        counts = dict(self._counts)
        get = counts.get
        for element, count in other._counts.items():
            counts[element] = get(element, 0) + count
        return Multiset._from_counts(counts)

    def __sub__(self, other: "Multiset[E]") -> "Multiset[E]":
        """Exact difference; raises ``ValueError`` if ``other`` is not included in ``self``."""
        if not isinstance(other, Multiset):
            return NotImplemented
        counts = dict(self._counts)
        for element, count in other._counts.items():
            remaining = counts.get(element, 0) - count
            if remaining < 0:
                raise ValueError(
                    f"cannot subtract {count} occurrence(s) of {element!r} from {counts.get(element, 0)}"
                )
            if remaining == 0:
                counts.pop(element, None)
            else:
                counts[element] = remaining
        return Multiset._from_counts(counts)

    def monus(self, other: "Multiset[E]") -> "Multiset[E]":
        """Saturating difference ``max(M(e) - M'(e), 0)``, written ``M ∸ M'``."""
        other_counts = other._counts
        if not other_counts:
            return self
        counts = {}
        other_get = other_counts.get
        for element, count in self._counts.items():
            remaining = count - other_get(element, 0)
            if remaining > 0:
                counts[element] = remaining
        return Multiset._from_counts(counts)

    def scale(self, factor: int) -> "Multiset[E]":
        """Multiply every multiplicity by a non-negative integer factor."""
        if factor < 0:
            raise ValueError("scaling factor must be non-negative")
        if factor == 0:
            return Multiset()
        return Multiset._from_counts(
            {element: count * factor for element, count in self._counts.items()}
        )

    def union(self, other: "Multiset[E]") -> "Multiset[E]":
        """Componentwise maximum."""
        counts = dict(self._counts)
        get = counts.get
        for element, count in other._counts.items():
            if count > get(element, 0):
                counts[element] = count
        return Multiset._from_counts(counts)

    def intersection(self, other: "Multiset[E]") -> "Multiset[E]":
        """Componentwise minimum."""
        counts = {}
        other_get = other._counts.get
        for element, count in self._counts.items():
            shared = min(count, other_get(element, 0))
            if shared > 0:
                counts[element] = shared
        return Multiset._from_counts(counts)

    def restrict(self, elements: Iterable[E]) -> "Multiset[E]":
        """Keep only occurrences of the given elements."""
        allowed = set(elements)
        return Multiset._from_counts(
            {element: count for element, count in self._counts.items() if element in allowed}
        )

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counts == other._counts

    def __le__(self, other: "Multiset[E]") -> bool:
        """Componentwise inclusion ``M <= M'``."""
        if not isinstance(other, Multiset):
            return NotImplemented
        other_get = other._counts.get
        for element, count in self._counts.items():
            if count > other_get(element, 0):
                return False
        return True

    def __lt__(self, other: "Multiset[E]") -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self <= other and self != other

    def __ge__(self, other: "Multiset[E]") -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return other <= self

    def __gt__(self, other: "Multiset[E]") -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return other < self

    def is_empty(self) -> bool:
        """True if the multiset has no occurrences."""
        return not self._counts

    def disjoint(self, other: "Multiset[E]") -> bool:
        """True if the supports are disjoint."""
        return all(element not in other for element in self._counts)

    # ------------------------------------------------------------------
    # Hashing and printing
    # ------------------------------------------------------------------

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._counts.items()))
        return self._hash

    def __reduce__(self):
        # Pickle only the counts, never the cached hash: hash values of the
        # elements are process-specific under hash randomization, so a hash
        # cached in one process must not travel to another (worker processes
        # of the parallel verification engine would corrupt their dicts).
        return (Multiset, (self._counts,))

    def __repr__(self) -> str:
        if not self._counts:
            return "Multiset()"
        inner = ", ".join(f"{element!r}: {count}" for element, count in self.items_sorted())
        return f"Multiset({{{inner}}})"

    def pretty(self) -> str:
        """Human-friendly rendering, e.g. ``{A, A, b}``."""
        if not self._counts:
            return "{}"
        parts = []
        for element, count in self.items_sorted():
            label = element if isinstance(element, str) else repr(element)
            if count == 1:
                parts.append(f"{label}")
            else:
                parts.append(f"{count}*{label}")
        return "{" + ", ".join(parts) + "}"
