"""The WS³ verification engine (Sections 4 and 6 of the paper).

The supported entry point is the unified session API of :mod:`repro.api`::

    from repro.api import Verifier

    report = Verifier().check(protocol, properties=["ws3", "correctness"])

The historical per-property functions (``verify_ws3``,
``check_layered_termination``, ``check_strong_consensus``,
``check_correctness``) remain importable from here but emit
``DeprecationWarning``; they delegate to the same implementations
(``*_impl``) the API's property checkers use, so verdicts are identical.
:mod:`repro.verification.explicit` — the explicit-state single-input
baseline of earlier work — is also exposed through the ``"explicit"``
property of the new API.
"""

from repro.verification.correctness import (
    CorrectnessResult,
    check_correctness,
    check_correctness_impl,
)
from repro.verification.layered_termination import (
    LayeredTerminationResult,
    check_layered_termination,
    check_layered_termination_impl,
    check_partition,
)
from repro.verification.strong_consensus import (
    StrongConsensusResult,
    check_strong_consensus,
    check_strong_consensus_impl,
)
from repro.verification.ws3 import WS3Result, verify_ws3, verify_ws3_impl

__all__ = [
    "verify_ws3",
    "verify_ws3_impl",
    "WS3Result",
    "check_layered_termination",
    "check_layered_termination_impl",
    "check_partition",
    "LayeredTerminationResult",
    "check_strong_consensus",
    "check_strong_consensus_impl",
    "StrongConsensusResult",
    "check_correctness",
    "check_correctness_impl",
    "CorrectnessResult",
]
