"""Petri nets, markings and the firing rule (Appendix A of the paper).

A Petri net ``N = (P, T, F)`` consists of places, transitions and a flow
function assigning a multiplicity to every (place, transition) and
(transition, place) pair.  A marking assigns a number of tokens to every
place.  Unlike population-protocol transitions, Petri-net transitions may
create or destroy tokens.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.datatypes.multiset import Multiset

Marking = Multiset


class PetriNetError(ValueError):
    """Raised when a net definition or operation is invalid."""


@dataclass(frozen=True)
class PetriTransition:
    """A Petri-net transition with ``pre`` (consumed) and ``post`` (produced) multisets."""

    name: str
    pre: Multiset
    post: Multiset

    @classmethod
    def make(cls, name: str, pre: Mapping | Iterable, post: Mapping | Iterable) -> "PetriTransition":
        pre_ms = pre if isinstance(pre, Multiset) else Multiset(pre if isinstance(pre, Mapping) else list(pre))
        post_ms = post if isinstance(post, Multiset) else Multiset(post if isinstance(post, Mapping) else list(post))
        return cls(name, pre_ms, post_ms)

    def enabled_at(self, marking: Marking) -> bool:
        return self.pre <= marking

    def fire(self, marking: Marking) -> Marking:
        if not self.enabled_at(marking):
            raise PetriNetError(f"transition {self.name} is not enabled at {marking.pretty()}")
        return marking - self.pre + self.post

    def delta(self) -> dict:
        """Token change per place."""
        effect: dict = {}
        for place in set(self.pre.support()) | set(self.post.support()):
            change = self.post[place] - self.pre[place]
            if change != 0:
                effect[place] = change
        return effect

    @property
    def is_conservative(self) -> bool:
        """True if the transition preserves the total number of tokens."""
        return self.pre.size() == self.post.size()

    def __repr__(self) -> str:
        return f"<{self.name}: {self.pre.pretty()} -> {self.post.pretty()}>"


@dataclass
class PetriNet:
    """A Petri net with named places and transitions."""

    places: frozenset
    transitions: tuple[PetriTransition, ...]
    name: str = "net"

    def __init__(self, places: Iterable, transitions: Iterable[PetriTransition], name: str = "net"):
        self.places = frozenset(places)
        self.transitions = tuple(transitions)
        self.name = name
        self._validate()

    def _validate(self) -> None:
        names = set()
        for transition in self.transitions:
            if transition.name in names:
                raise PetriNetError(f"duplicate transition name {transition.name!r}")
            names.add(transition.name)
            unknown = (set(transition.pre.support()) | set(transition.post.support())) - self.places
            if unknown:
                raise PetriNetError(f"transition {transition.name} uses unknown places {unknown}")

    # ------------------------------------------------------------------

    @property
    def num_places(self) -> int:
        return len(self.places)

    @property
    def num_transitions(self) -> int:
        return len(self.transitions)

    def transition(self, name: str) -> PetriTransition:
        for transition in self.transitions:
            if transition.name == name:
                return transition
        raise KeyError(name)

    def enabled_transitions(self, marking: Marking) -> list[PetriTransition]:
        return [t for t in self.transitions if t.enabled_at(marking)]

    def fire(self, marking: Marking, transition: PetriTransition | str) -> Marking:
        if isinstance(transition, str):
            transition = self.transition(transition)
        return transition.fire(marking)

    def fire_sequence(self, marking: Marking, names: Iterable[str | PetriTransition]) -> Marking:
        current = marking
        for transition in names:
            current = self.fire(current, transition)
        return current

    def is_marking(self, marking: Marking) -> bool:
        return set(marking.support()) <= self.places

    @property
    def is_conservative(self) -> bool:
        """True if every transition preserves the token count (population-protocol-like)."""
        return all(t.is_conservative for t in self.transitions)

    def in_normal_form(self) -> bool:
        """Normal form of Appendix A: arc weights 1 and pre/post sizes in {1, 2}."""
        for transition in self.transitions:
            if any(count > 1 for count in transition.pre.values()):
                return False
            if any(count > 1 for count in transition.post.values()):
                return False
            if not (1 <= transition.pre.size() <= 2 and 1 <= transition.post.size() <= 2):
                return False
        return True

    def reversed(self) -> "PetriNet":
        """The net with all arcs reversed (used in the Proposition 3 reduction)."""
        reversed_transitions = [
            PetriTransition(transition.name, transition.post, transition.pre)
            for transition in self.transitions
        ]
        return PetriNet(self.places, reversed_transitions, name=f"{self.name}(reversed)")

    def describe(self) -> str:
        lines = [f"Petri net {self.name}: {self.num_places} places, {self.num_transitions} transitions"]
        for transition in self.transitions:
            lines.append(f"  {transition.name}: {transition.pre.pretty()} -> {transition.post.pretty()}")
        return "\n".join(lines)
