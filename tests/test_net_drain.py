"""Subprocess tests of the network daemon's shutdown discipline.

SIGTERM must *drain*: stop accepting, settle or journal in-flight work,
exit 0.  SIGKILL must be *recoverable*: whatever the journal acknowledged
is re-served or re-run by the next daemon.  Both are exercised against a
real ``repro-verify serve --tcp`` subprocess, alongside a wire-fault
scenario (injected frame truncation) that the client's retry loop must
absorb end to end.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.service import VerificationService
from repro.service.client import VerificationClient

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def tcp_daemon(tmp_path, *extra_args, journal=True, env_extra=None) -> tuple[subprocess.Popen, str, int]:
    """Start ``repro-verify serve --tcp 127.0.0.1:0``; returns (proc, host, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_PLAN", None)
    env.update(env_extra or {})
    command = [sys.executable, "-m", "repro.cli", "serve", "--tcp", "127.0.0.1:0"]
    if journal:
        command += ["--journal-dir", str(tmp_path / "journal")]
    command += list(extra_args)
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        raise AssertionError(f"daemon died before announcing a port: {proc.stderr.read()}")
    announced = json.loads(line)
    assert announced["type"] == "listening"
    return proc, announced["host"], announced["port"]


class TestSigtermDrain:
    def test_sigterm_exits_zero_and_journals_backlog(self, tmp_path):
        """SIGTERM mid-batch: clean exit, queued jobs journalled and resumable."""
        proc, host, port = tcp_daemon(tmp_path, "--drain-timeout", "20")
        jobs: list[str] = []
        try:
            with VerificationClient(host, port, timeout=30) as client:
                # One dispatcher: most of these are still queued when the
                # signal lands.
                for _ in range(5):
                    jobs.append(client.submit("majority"))
        finally:
            proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=120) == 0

        # The port is released.
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2).close()

        # Every submitted job either finished before the drain or was left
        # journalled; the next service finishes the rest — zero lost jobs.
        with VerificationService(journal_dir=tmp_path / "journal") as service:
            stats = service.statistics
            assert stats["recovered"] + stats["resumed"] == len(jobs)
            for job_id in jobs:
                handle = service.job(job_id)
                assert handle.wait(timeout=300)
                assert handle.status().value == "done"

    def test_sigterm_without_journal_cancels_backlog_and_exits_zero(self, tmp_path):
        proc, host, port = tcp_daemon(tmp_path, "--drain-timeout", "20", journal=False)
        try:
            with VerificationClient(host, port, timeout=30) as client:
                for _ in range(3):
                    client.submit("majority")
        finally:
            proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=120) == 0

    def test_draining_daemon_sheds_new_connections(self, tmp_path):
        """A connection arriving mid-drain gets an explicit refusal or a
        closed port — never a hang."""
        proc, host, port = tcp_daemon(tmp_path, "--drain-timeout", "20")
        try:
            with VerificationClient(host, port, timeout=30) as client:
                for _ in range(4):
                    client.submit("majority")
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.1)
            try:
                sock = socket.create_connection((host, port), timeout=2)
            except OSError:
                pass  # listener already closed: equally fine
            else:
                sock.close()
            assert proc.wait(timeout=120) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


class TestSigkillOverTcp:
    def test_sigkill_then_restart_recovers_every_acknowledged_job(self, tmp_path):
        proc, host, port = tcp_daemon(tmp_path)
        jobs: list[str] = []
        try:
            with VerificationClient(host, port, timeout=30) as client:
                for _ in range(3):
                    jobs.append(client.submit("majority"))
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        assert proc.returncode != 0

        # Acknowledged means fsynced: the restarted daemon serves all of it.
        proc2, host2, port2 = tcp_daemon(tmp_path)
        try:
            with VerificationClient(host2, port2, timeout=30) as client:
                for job_id in jobs:
                    assert client.wait(job_id, timeout=300) == "done"
                    assert "report" in client.result(job_id)
        finally:
            proc2.send_signal(signal.SIGTERM)
            assert proc2.wait(timeout=120) == 0


class TestWireFaultsEndToEnd:
    def test_truncated_frames_are_absorbed_by_client_retries(self, tmp_path):
        """A daemon that tears every 3rd response frame still serves a
        correct, complete session through the retrying client."""
        plan = json.dumps(
            {
                "seed": 7,
                "faults": [
                    {"site": "net.send", "action": "truncate", "at": 2, "match": {"kind": "response"}},
                    {"site": "net.send", "action": "drop", "at": 5, "match": {"kind": "response"}},
                ],
            }
        )
        proc, host, port = tcp_daemon(
            tmp_path, journal=False, env_extra={"REPRO_FAULT_PLAN": plan}
        )
        try:
            with VerificationClient(host, port, timeout=5) as client:
                job = client.submit("majority")
                assert client.wait(job, timeout=300) == "done"
                result = client.result(job)
                assert result["status"] == "done" and "report" in result
                assert client.statistics["retries"] >= 1
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120) == 0
