"""repro — Efficient verification of population protocols.

A from-scratch reproduction of:

    Michael Blondin, Javier Esparza, Stefan Jaax, Philipp J. Meyer.
    "Towards Efficient Verification of Population Protocols", PODC 2017.

The package provides:

* population-protocol syntax, semantics and simulation (:mod:`repro.protocols`),
* a library of standard protocols (majority, broadcast, flock of birds,
  threshold, remainder) and protocol combinators (:mod:`repro.protocols.library`),
* Presburger predicates and their compilation to WS³ protocols
  (:mod:`repro.presburger`),
* the WS³ membership checker (LayeredTermination + StrongConsensus) and the
  correctness checker (:mod:`repro.verification`),
* an explicit-state baseline verifier for single inputs,
* a from-scratch SMT-style constraint solver for linear integer arithmetic
  (:mod:`repro.smtlite`), replacing the paper's use of Z3,
* a Petri-net substrate (:mod:`repro.petri`).
"""

from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import (
    Configuration,
    OrderedPartition,
    PopulationProtocol,
    Transition,
)
from repro.protocols.simulation import SimulationResult, Simulator, simulate

__version__ = "1.0.0"

__all__ = [
    "Multiset",
    "Configuration",
    "OrderedPartition",
    "PopulationProtocol",
    "Transition",
    "SimulationResult",
    "Simulator",
    "simulate",
    "Verifier",
    "VerificationOptions",
    "VerificationReport",
    "Verdict",
    "__version__",
]


def __getattr__(name):
    """Lazily expose the higher-level subsystems without import cycles."""
    if name in ("Verifier", "VerificationOptions", "VerificationReport", "Verdict"):
        import repro.api as api

        return getattr(api, name)
    if name == "verify_ws3":
        from repro.verification.ws3 import verify_ws3

        return verify_ws3
    if name == "WS3Result":
        from repro.verification.ws3 import WS3Result

        return WS3Result
    if name == "library":
        from repro.protocols import library

        return library
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
