"""Tests for StrongConsensus, the WS3 membership check and the correctness check."""

from __future__ import annotations

import pytest

from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import PopulationProtocol, Transition
from repro.smtlite.formula import Formula
from repro.verification.correctness import check_correctness
from repro.verification.explicit import (
    check_predicate_on_inputs,
    verify_inputs_up_to,
    verify_single_input,
)
from repro.verification.flow import PotentialReachabilityWitness, check_potential_reachability
from repro.verification.strong_consensus import check_strong_consensus, find_refinement
from repro.verification.ws3 import verify_ws3


def coin_flip_protocol() -> PopulationProtocol:
    """A protocol that is *not* well-specified: two agents can agree on either value."""
    return PopulationProtocol(
        states=["x", "yes", "no"],
        transitions=[
            Transition.make(("x", "x"), ("yes", "yes")),
            Transition.make(("x", "x"), ("no", "no")),
            Transition.make(("yes", "no"), ("yes", "yes")),
        ],
        input_alphabet=["x"],
        input_map={"x": "x"},
        output_map={"x": 0, "yes": 1, "no": 0},
        name="coin-flip",
    )


class MajorityPredicate:
    """The predicate computed by the majority protocol: #B >= #A."""

    def formula(self, input_vars) -> Formula:
        return input_vars["B"] - input_vars["A"] >= 0

    def negation_formula(self, input_vars) -> Formula:
        return input_vars["B"] - input_vars["A"] <= -1

    def evaluate(self, input_population) -> bool:
        return input_population["B"] >= input_population["A"]


class WrongMajorityPredicate(MajorityPredicate):
    """Deliberately wrong: strict majority of B (differs on ties)."""

    def formula(self, input_vars) -> Formula:
        return input_vars["B"] - input_vars["A"] >= 1

    def negation_formula(self, input_vars) -> Formula:
        return input_vars["B"] - input_vars["A"] <= 0

    def evaluate(self, input_population) -> bool:
        return input_population["B"] > input_population["A"]


@pytest.mark.parametrize("theory", ["auto", "exact"])
class TestStrongConsensus:
    def test_majority_satisfies_strong_consensus(self, majority_protocol, theory):
        result = check_strong_consensus(majority_protocol, theory=theory)
        assert result.holds
        assert result.statistics["iterations"] >= 1

    def test_broadcast_satisfies_strong_consensus(self, broadcast_protocol, theory):
        result = check_strong_consensus(broadcast_protocol, theory=theory)
        assert result.holds

    def test_coin_flip_violates_strong_consensus(self, theory):
        result = check_strong_consensus(coin_flip_protocol(), theory=theory)
        assert not result.holds
        assert result.counterexample is not None
        ce = result.counterexample
        # The counterexample must be a genuine potential-reachability witness
        # for both branches and exhibit disagreeing outputs.
        protocol = coin_flip_protocol()
        ok_true, _ = check_potential_reachability(
            protocol,
            PotentialReachabilityWitness(ce.initial, ce.terminal_true, ce.flow_true),
        )
        ok_false, _ = check_potential_reachability(
            protocol,
            PotentialReachabilityWitness(ce.initial, ce.terminal_false, ce.flow_false),
        )
        assert ok_true and ok_false
        assert "yes" in ce.terminal_true.support()
        assert set(ce.terminal_false.support()) & {"no", "x"}


class TestRefinementMechanics:
    def test_majority_refinement_found_for_spurious_model(self, majority_protocol):
        by_name = {t.name: t for t in majority_protocol.transitions}
        # The spurious witness of Example 9/13: traps rule it out.
        step = find_refinement(
            majority_protocol,
            Multiset({"A": 1, "B": 1}),
            Multiset({"a": 2}),
            {by_name["tAB"]: 1, by_name["tAb"]: 1},
        )
        assert step is not None
        assert step.kind in ("trap", "siphon")

    def test_no_refinement_for_genuine_execution(self, majority_protocol):
        by_name = {t.name: t for t in majority_protocol.transitions}
        source = Multiset({"A": 1, "B": 2})
        flow = {by_name["tAB"]: 1, by_name["tBa"]: 1}
        target = Multiset({"B": 1, "b": 2})
        assert find_refinement(majority_protocol, source, target, flow) is None


class TestWS3:
    def test_majority_is_ws3(self, majority_protocol):
        result = verify_ws3(majority_protocol)
        assert result.is_ws3
        assert result.is_well_specified
        assert result.layered_termination.holds
        assert result.strong_consensus.holds
        assert "LayeredTermination" in result.summary()

    def test_broadcast_is_ws3(self, broadcast_protocol):
        assert verify_ws3(broadcast_protocol).is_ws3

    def test_coin_flip_is_not_ws3(self):
        result = verify_ws3(coin_flip_protocol(), check_consensus_first=True)
        assert not result.is_ws3
        assert not result.strong_consensus.holds

    def test_non_silent_protocol_is_not_ws3(self):
        protocol = PopulationProtocol(
            states=["p", "q"],
            transitions=[
                Transition.make(("p", "p"), ("q", "q")),
                Transition.make(("q", "q"), ("p", "p")),
            ],
            input_alphabet=["p"],
            input_map={"p": "p"},
            output_map={"p": 1, "q": 1},
        )
        result = verify_ws3(protocol)
        assert not result.is_ws3
        assert not result.layered_termination.holds
        # StrongConsensus is skipped when LayeredTermination already failed.
        assert result.strong_consensus is None

    def test_statistics_fields(self, majority_protocol):
        result = verify_ws3(majority_protocol)
        assert result.statistics["num_states"] == 4
        assert result.statistics["num_transitions"] == 4
        assert result.statistics["time"] > 0


class TestCorrectness:
    def test_majority_computes_its_predicate(self, majority_protocol):
        result = check_correctness(majority_protocol, MajorityPredicate())
        assert result.holds

    def test_majority_does_not_compute_strict_majority(self, majority_protocol):
        result = check_correctness(majority_protocol, WrongMajorityPredicate())
        assert not result.holds
        assert result.counterexample is not None
        ce = result.counterexample
        # The counterexample should be a tie (where the two predicates differ).
        assert ce.input_population["A"] == ce.input_population["B"]

    def test_correctness_agrees_with_explicit_enumeration(self, majority_protocol):
        ok, mismatches = check_predicate_on_inputs(majority_protocol, MajorityPredicate(), max_size=4)
        assert ok, mismatches


class TestExplicitBaseline:
    def test_majority_single_inputs(self, majority_protocol):
        result = verify_single_input(majority_protocol, {"A": 2, "B": 3})
        assert result.well_specified
        assert result.output == 1
        result = verify_single_input(majority_protocol, {"A": 3, "B": 2})
        assert result.well_specified
        assert result.output == 0
        result = verify_single_input(majority_protocol, {"A": 2, "B": 2})
        assert result.well_specified
        assert result.output == 1

    def test_coin_flip_single_input_not_well_specified(self):
        result = verify_single_input(coin_flip_protocol(), {"x": 2})
        assert not result.well_specified

    def test_sweep_all_small_inputs(self, majority_protocol):
        sweep = verify_inputs_up_to(majority_protocol, max_size=4)
        assert sweep.all_well_specified
        assert len(sweep.results) == 3 + 4 + 5
        assert sweep.total_configurations > 0
        outputs = sweep.outputs()
        assert outputs[Multiset({"A": 1, "B": 2})] == 1
        assert outputs[Multiset({"A": 3, "B": 1})] == 0

    def test_truncated_exploration_reported(self, majority_protocol):
        result = verify_single_input(majority_protocol, {"A": 6, "B": 6}, max_configurations=5)
        assert not result.well_specified
        assert "truncated" in result.reason
