"""The content-hash keyed cache of simplified constraint systems.

The ROADMAP item: batch runs re-simplified identical blocks per protocol;
now identical systems are simplified once per process (in-memory memo) and,
with a result-cache directory configured, once per *machine* (pickled in
``<cache_dir>/simplified/``).  Correctness bar: a cached result must be
indistinguishable from a fresh pass — same system, same statistics, and no
shared mutable state with the caller.
"""

from __future__ import annotations

import pytest

from repro.constraints.ir import ConstraintSystem
from repro.constraints.simplify import SimplifyStats, simplify_system
from repro.constraints.simplify_cache import (
    SimplifyCache,
    active_cache,
    configure_simplify_cache,
    simplify_system_cached,
    system_content_key,
)
from repro.smtlite.terms import IntVar


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate each test from the process-wide memo (entries *and* counters)."""
    cache = active_cache()
    cache.clear()
    cache.detach_directory()
    saved = dict(cache.statistics)
    for key in cache.statistics:
        cache.statistics[key] = 0
    yield cache
    cache.clear()
    cache.detach_directory()
    cache.statistics.update(saved)


def build_system() -> ConstraintSystem:
    system = ConstraintSystem("test-block")
    x = system.declare("x", group="vars")
    y = system.declare("y", group="vars")
    system.add(x + y >= 2)
    system.add(x + y >= 2)  # duplicate, removed by the simplifier
    system.add(x <= 5)
    return system


class TestContentKey:
    def test_identical_systems_share_a_key(self):
        assert system_content_key(build_system(), True) == system_content_key(build_system(), True)

    def test_key_distinguishes_content_and_flags(self):
        base = system_content_key(build_system(), True)
        assert system_content_key(build_system(), False) != base
        changed = build_system()
        changed.add(IntVar("x") >= 1)
        assert system_content_key(changed, True) != base
        renamed = build_system()
        renamed.name = "other-block"
        assert system_content_key(renamed, True) != base


class TestMemoization:
    def test_second_pass_is_a_hit_with_identical_output(self, fresh_cache):
        first = simplify_system_cached(build_system())
        assert fresh_cache.statistics["misses"] == 1
        second = simplify_system_cached(build_system())
        assert fresh_cache.statistics["hits"] == 1
        assert second.constraints == first.constraints
        assert second.bounds == first.bounds
        assert second.groups == first.groups
        reference, _ = simplify_system(build_system())
        assert second.constraints == reference.constraints

    def test_hit_merges_the_original_statistics(self, fresh_cache):
        cold_stats = SimplifyStats()
        simplify_system_cached(build_system(), simplifier=cold_stats)
        warm_stats = SimplifyStats()
        simplify_system_cached(build_system(), simplifier=warm_stats)
        assert warm_stats.to_dict() == cold_stats.to_dict()
        assert warm_stats.duplicates_removed >= 1

    def test_cached_system_is_a_defensive_copy(self, fresh_cache):
        first = simplify_system_cached(build_system())
        first.constraints.append(IntVar("x") >= 3)
        first.bounds["x"] = (1, 1)
        second = simplify_system_cached(build_system())
        assert second.constraints != first.constraints
        # The default pass tightened ``x <= 5`` into the bounds; the
        # caller's later mutation to (1, 1) must not leak into the cache.
        assert second.bounds["x"] == (0, 5)


class TestDiskLayer:
    def test_round_trips_through_the_result_cache_directory(self, tmp_path):
        directory = tmp_path / "cache" / "simplified"
        configure_simplify_cache(directory)
        simplify_system_cached(build_system())
        assert list(directory.glob("*.pkl")), "expected a pickled entry on disk"

        # A fresh process is simulated by a fresh cache reading the same dir.
        fresh = SimplifyCache(directory)
        key = system_content_key(build_system(), True)
        entry = fresh.get(key)
        assert entry is not None
        system, stats = entry
        reference, reference_stats = simplify_system(build_system())
        assert system.constraints == reference.constraints
        assert stats.to_dict() == reference_stats.to_dict()
        assert fresh.statistics["disk_hits"] == 1
        configure_simplify_cache(None)

    def test_torn_entries_are_treated_as_misses(self, tmp_path):
        cache = SimplifyCache(tmp_path)
        key = system_content_key(build_system(), True)
        (tmp_path / f"{key}.pkl").write_bytes(b"definitely not a pickle")
        assert cache.get(key) is None
        assert cache.statistics["misses"] == 1


class TestServiceWiring:
    def test_cache_dir_sessions_configure_the_disk_layer(self, tmp_path):
        from repro.protocols.library import majority_protocol
        from repro.service import VerificationService

        cache_dir = tmp_path / "results"
        with VerificationService(cache_dir=str(cache_dir)) as service:
            handle = service.submit_batch([majority_protocol()], properties=["strong_consensus"])
            handle.wait(timeout=240)
            assert handle.result().all_ok
        simplified = cache_dir / "simplified"
        assert simplified.is_dir() and list(simplified.glob("*.pkl"))
        configure_simplify_cache(None)

    def test_verification_verdicts_survive_a_warm_cache(self):
        """Cold vs warm simplifier cache: identical verdicts and statistics."""
        from repro.api import Verifier
        from repro.protocols.library import majority_protocol

        with Verifier() as verifier:
            cold = verifier.check(majority_protocol(), properties=["strong_consensus"])
        assert active_cache().statistics["stores"] > 0
        with Verifier() as verifier:
            warm = verifier.check(majority_protocol(), properties=["strong_consensus"])
        assert active_cache().statistics["hits"] > 0
        cold_sc = cold.result_for("strong_consensus")
        warm_sc = warm.result_for("strong_consensus")
        assert warm_sc.verdict == cold_sc.verdict
        assert warm_sc.refinements == cold_sc.refinements
        assert warm_sc.statistics["simplifier"] == cold_sc.statistics["simplifier"]
