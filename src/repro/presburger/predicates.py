"""Quantifier-free Presburger predicates over input populations.

Angluin et al. proved that population protocols compute exactly the
Presburger-definable predicates, and that these are the boolean combinations
of *threshold* predicates ``sum_i a_i x_i < c`` and *remainder* predicates
``sum_i a_i x_i ≡ c (mod m)`` (Section 5 of the paper).  This module models
exactly that fragment:

* :class:`ThresholdPredicate` and :class:`RemainderPredicate` are the atoms;
* :class:`NotPredicate`, :class:`AndPredicate`, :class:`OrPredicate` close
  them under boolean operations (also available as ``~``, ``&``, ``|``);
* every predicate can *evaluate* itself on a concrete input population and
  can *describe itself symbolically* as a :class:`repro.smtlite` formula over
  per-symbol count variables — the latter is what the correctness checker of
  Section 6 consumes.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping

from repro.datatypes.multiset import Multiset
from repro.smtlite.formula import FALSE, TRUE, Formula, conjunction, disjunction
from repro.smtlite.terms import LinearExpr

_fresh_counter = itertools.count()


def _counts(input_population) -> Mapping:
    if isinstance(input_population, Multiset):
        return input_population
    return dict(input_population)


def _count_of(counts: Mapping, symbol) -> int:
    if isinstance(counts, Multiset):
        return counts[symbol]
    return counts.get(symbol, 0)


class Predicate:
    """Base class of Presburger predicates."""

    def variables(self) -> frozenset:
        """The input symbols mentioned by the predicate."""
        raise NotImplementedError

    def evaluate(self, input_population) -> bool:
        """Evaluate the predicate on a population over the input alphabet."""
        raise NotImplementedError

    def formula(self, input_vars: Mapping) -> Formula:
        """A constraint over the symbol-count variables expressing the predicate."""
        raise NotImplementedError

    def negation_formula(self, input_vars: Mapping) -> Formula:
        """A constraint expressing the negation of the predicate."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    # -- boolean algebra -------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return AndPredicate(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return OrPredicate(self, other)

    def __invert__(self) -> "Predicate":
        return NotPredicate(self)

    def negate(self) -> "Predicate":
        return NotPredicate(self)

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}({self.describe()})"


def _linear_combination(coefficients: Mapping, input_vars: Mapping) -> LinearExpr:
    terms = []
    for symbol, coefficient in coefficients.items():
        if coefficient == 0:
            continue
        variable = input_vars[symbol]
        if isinstance(variable, str):
            variable = LinearExpr.variable(variable)
        terms.append(coefficient * variable)
    return LinearExpr.sum_of(terms) if terms else LinearExpr.constant_expr(0)


class ThresholdPredicate(Predicate):
    """The predicate ``sum_i a_i * x_i < c``."""

    def __init__(self, coefficients: Mapping, c: int):
        self.coefficients = {symbol: int(value) for symbol, value in coefficients.items()}
        if not self.coefficients:
            raise ValueError("a threshold predicate needs at least one variable")
        self.c = int(c)

    def variables(self) -> frozenset:
        return frozenset(self.coefficients)

    def evaluate(self, input_population) -> bool:
        counts = _counts(input_population)
        total = sum(value * _count_of(counts, symbol) for symbol, value in self.coefficients.items())
        return total < self.c

    def formula(self, input_vars: Mapping) -> Formula:
        return _linear_combination(self.coefficients, input_vars) <= self.c - 1

    def negation_formula(self, input_vars: Mapping) -> Formula:
        return _linear_combination(self.coefficients, input_vars) >= self.c

    def describe(self) -> str:
        terms = " + ".join(f"{value}*{symbol}" for symbol, value in sorted(self.coefficients.items()))
        return f"{terms} < {self.c}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ThresholdPredicate)
            and self.coefficients == other.coefficients
            and self.c == other.c
        )

    def __hash__(self) -> int:
        return hash(("thr", frozenset(self.coefficients.items()), self.c))


class RemainderPredicate(Predicate):
    """The predicate ``sum_i a_i * x_i ≡ c (mod m)``."""

    def __init__(self, coefficients: Mapping, m: int, c: int):
        if m < 2:
            raise ValueError("the modulus must be at least 2")
        self.coefficients = {symbol: int(value) for symbol, value in coefficients.items()}
        if not self.coefficients:
            raise ValueError("a remainder predicate needs at least one variable")
        self.m = int(m)
        self.c = int(c) % self.m

    def variables(self) -> frozenset:
        return frozenset(self.coefficients)

    def evaluate(self, input_population) -> bool:
        counts = _counts(input_population)
        total = sum(value * _count_of(counts, symbol) for symbol, value in self.coefficients.items())
        return total % self.m == self.c

    def _normalised_sum(self, input_vars: Mapping) -> LinearExpr:
        # Reduce the coefficients modulo m so the sum is non-negative for
        # non-negative inputs; this keeps the existential multiplier natural.
        reduced = {symbol: value % self.m for symbol, value in self.coefficients.items()}
        return _linear_combination(reduced, input_vars)

    def formula(self, input_vars: Mapping) -> Formula:
        quotient = LinearExpr.variable(f"_rem_q{next(_fresh_counter)}")
        return self._normalised_sum(input_vars).eq(self.m * quotient + self.c)

    def negation_formula(self, input_vars: Mapping) -> Formula:
        index = next(_fresh_counter)
        quotient = LinearExpr.variable(f"_rem_q{index}")
        residue = LinearExpr.variable(f"_rem_r{index}")
        not_target = disjunction([residue <= self.c - 1, residue >= self.c + 1])
        return conjunction(
            [
                self._normalised_sum(input_vars).eq(self.m * quotient + residue),
                residue <= self.m - 1,
                not_target,
            ]
        )

    def describe(self) -> str:
        terms = " + ".join(f"{value}*{symbol}" for symbol, value in sorted(self.coefficients.items()))
        return f"{terms} = {self.c} (mod {self.m})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RemainderPredicate)
            and self.coefficients == other.coefficients
            and self.m == other.m
            and self.c == other.c
        )

    def __hash__(self) -> int:
        return hash(("rem", frozenset(self.coefficients.items()), self.m, self.c))


class NotPredicate(Predicate):
    def __init__(self, operand: Predicate):
        self.operand = operand

    def variables(self) -> frozenset:
        return self.operand.variables()

    def evaluate(self, input_population) -> bool:
        return not self.operand.evaluate(input_population)

    def formula(self, input_vars: Mapping) -> Formula:
        return self.operand.negation_formula(input_vars)

    def negation_formula(self, input_vars: Mapping) -> Formula:
        return self.operand.formula(input_vars)

    def describe(self) -> str:
        return f"not ({self.operand.describe()})"


class _BinaryPredicate(Predicate):
    _word = "?"

    def __init__(self, left: Predicate, right: Predicate):
        self.left = left
        self.right = right

    def variables(self) -> frozenset:
        return self.left.variables() | self.right.variables()

    def describe(self) -> str:
        return f"({self.left.describe()}) {self._word} ({self.right.describe()})"


class AndPredicate(_BinaryPredicate):
    _word = "and"

    def evaluate(self, input_population) -> bool:
        return self.left.evaluate(input_population) and self.right.evaluate(input_population)

    def formula(self, input_vars: Mapping) -> Formula:
        return conjunction([self.left.formula(input_vars), self.right.formula(input_vars)])

    def negation_formula(self, input_vars: Mapping) -> Formula:
        return disjunction(
            [self.left.negation_formula(input_vars), self.right.negation_formula(input_vars)]
        )


class OrPredicate(_BinaryPredicate):
    _word = "or"

    def evaluate(self, input_population) -> bool:
        return self.left.evaluate(input_population) or self.right.evaluate(input_population)

    def formula(self, input_vars: Mapping) -> Formula:
        return disjunction([self.left.formula(input_vars), self.right.formula(input_vars)])

    def negation_formula(self, input_vars: Mapping) -> Formula:
        return conjunction(
            [self.left.negation_formula(input_vars), self.right.negation_formula(input_vars)]
        )


class TruePredicate(Predicate):
    """The constant true predicate (over a given set of variables)."""

    def __init__(self, variables=()):
        self._variables = frozenset(variables)

    def variables(self) -> frozenset:
        return self._variables

    def evaluate(self, input_population) -> bool:
        return True

    def formula(self, input_vars: Mapping) -> Formula:
        return TRUE

    def negation_formula(self, input_vars: Mapping) -> Formula:
        return FALSE

    def describe(self) -> str:
        return "true"


class FalsePredicate(Predicate):
    """The constant false predicate (over a given set of variables)."""

    def __init__(self, variables=()):
        self._variables = frozenset(variables)

    def variables(self) -> frozenset:
        return self._variables

    def evaluate(self, input_population) -> bool:
        return False

    def formula(self, input_vars: Mapping) -> Formula:
        return FALSE

    def negation_formula(self, input_vars: Mapping) -> Formula:
        return TRUE

    def describe(self) -> str:
        return "false"
