"""Microbenchmark for the incremental constraint IR (PR 9).

The scoped-delta simplifier's claim is that pushing a small delta onto a
large simplified base costs time proportional to the *delta*, while the
rebuild-per-scope strategy re-simplifies the whole flattened system each
time.  The first pair of benchmarks measures exactly that on a growing
scope stack; the second pair measures the end-to-end effect on the
refinement loop it was built for (StrongConsensus on a protocol with a
non-trivial pattern enumeration).
"""

from __future__ import annotations

import pytest

from repro.constraints.incremental import ScopedSimplifier
from repro.constraints.ir import ConstraintSystem
from repro.constraints.simplify import simplify_system
from repro.protocols.library import flock_of_birds_protocol, threshold_protocol
from repro.smtlite.terms import LinearExpr
from repro.verification.strong_consensus import check_strong_consensus_impl

from .conftest import run_once

BASE_CONSTRAINTS = 400
SCOPES = 40
DELTA_PER_SCOPE = 3


def _base_system() -> ConstraintSystem:
    system = ConstraintSystem("bench-base")
    variables = [system.declare(f"x{i}", 0, 100) for i in range(40)]
    for index in range(BASE_CONSTRAINTS):
        a = variables[index % len(variables)]
        b = variables[(index * 7 + 3) % len(variables)]
        system.add(a + 2 * b <= 50 + index % 17)
    return system


def _delta(step: int) -> list:
    x = LinearExpr.variable(f"x{step % 40}")
    y = LinearExpr.variable(f"x{(step * 3 + 1) % 40}")
    return [
        x + y <= 30 + step % 5,
        x - y <= 10,
        x + y <= 60,  # subsumed by the first atom: exercises the index
    ][:DELTA_PER_SCOPE]


def _incremental_stack() -> int:
    scoped = ScopedSimplifier(_base_system())
    asserted = 0
    for step in range(SCOPES):
        scoped.push()
        asserted += len(scoped.add_delta(*_delta(step)))
    for _ in range(SCOPES):
        scoped.pop()
    return asserted


def _from_scratch_stack() -> int:
    """The pre-PR-9 shape: re-simplify the whole flattened system per scope."""
    constraints = 0
    deltas: list = []
    for step in range(SCOPES):
        deltas.extend(_delta(step))
        system = _base_system()
        for formula in deltas:
            system.add(formula)
        simplified, _stats = simplify_system(system, tighten_bounds=False)
        constraints = len(simplified.constraints)
    return constraints


def test_delta_simplification_on_growing_stack(benchmark):
    asserted = run_once(benchmark, _incremental_stack)
    # The third atom of every delta is subsumed, so strictly fewer formulas
    # are asserted than arrive.
    assert 0 < asserted < SCOPES * DELTA_PER_SCOPE


def test_from_scratch_simplification_on_growing_stack(benchmark):
    constraints = run_once(benchmark, _from_scratch_stack)
    # The generated base repeats coefficient vectors, so dedup/subsumption
    # compresses it well below the raw count — the point here is the *time*
    # of re-simplifying the whole flattened system per scope.
    assert 0 < constraints <= BASE_CONSTRAINTS + SCOPES * DELTA_PER_SCOPE


@pytest.mark.parametrize("incremental", [True, False], ids=["incremental", "rebuild"])
def test_strong_consensus_flock_incremental_vs_rebuild(benchmark, incremental):
    protocol = flock_of_birds_protocol(4)
    result = run_once(benchmark, check_strong_consensus_impl, protocol, incremental=incremental)
    assert result.holds


@pytest.mark.parametrize("incremental", [True, False], ids=["incremental", "rebuild"])
def test_strong_consensus_threshold_incremental_vs_rebuild(benchmark, incremental):
    protocol = threshold_protocol([1, -1], 0)
    result = run_once(benchmark, check_strong_consensus_impl, protocol, incremental=incremental)
    assert result.holds
