"""Tests for Presburger predicates and their compilation to WS3 protocols."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.presburger.compiler import compile_predicate
from repro.presburger.predicates import (
    AndPredicate,
    FalsePredicate,
    OrPredicate,
    RemainderPredicate,
    ThresholdPredicate,
    TruePredicate,
)
from repro.smtlite.solver import Solver, SolverStatus
from repro.smtlite.terms import IntVar
from repro.verification.explicit import check_predicate_on_inputs

populations = st.fixed_dictionaries(
    {"x": st.integers(min_value=0, max_value=8), "y": st.integers(min_value=0, max_value=8)}
)


class TestEvaluation:
    def test_threshold(self):
        predicate = ThresholdPredicate({"x": 2, "y": -1}, 3)
        assert predicate.evaluate({"x": 1, "y": 0})
        assert not predicate.evaluate({"x": 2, "y": 0})
        assert predicate.evaluate({"x": 2, "y": 2})
        assert predicate.variables() == {"x", "y"}
        assert "< 3" in predicate.describe()

    def test_remainder(self):
        predicate = RemainderPredicate({"x": 1}, 3, 2)
        assert predicate.evaluate({"x": 2})
        assert predicate.evaluate({"x": 5})
        assert not predicate.evaluate({"x": 3})
        assert "(mod 3)" in predicate.describe()

    def test_remainder_reduces_target(self):
        assert RemainderPredicate({"x": 1}, 3, 5).c == 2

    def test_boolean_combinations(self):
        majority = ThresholdPredicate({"A": 1, "B": -1}, 1)   # B >= A
        parity = RemainderPredicate({"A": 1, "B": 1}, 2, 0)   # even population
        both = majority & parity
        either = majority | parity
        negation = ~majority
        assert both.evaluate({"A": 1, "B": 1})
        assert not both.evaluate({"A": 1, "B": 2})
        assert either.evaluate({"A": 1, "B": 2})
        assert negation.evaluate({"A": 2, "B": 1})
        assert both.variables() == {"A", "B"}

    def test_constants(self):
        assert TruePredicate(["x"]).evaluate({"x": 0})
        assert not FalsePredicate(["x"]).evaluate({"x": 0})

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdPredicate({}, 1)
        with pytest.raises(ValueError):
            RemainderPredicate({"x": 1}, 1, 0)


class TestFormulaAgreesWithEvaluation:
    """The symbolic encoding and concrete evaluation must agree on every input."""

    def _assert_agreement(self, predicate, population):
        input_vars = {symbol: IntVar(f"n_{symbol}") for symbol in ("x", "y")}
        assignment = {f"n_{symbol}": count for symbol, count in population.items()}

        solver = Solver()
        for symbol, variable in input_vars.items():
            solver.add(variable.eq(population.get(symbol, 0)))
        solver.add(predicate.formula(input_vars))
        holds_symbolically = solver.check().status is SolverStatus.SAT

        negation_solver = Solver()
        for symbol, variable in input_vars.items():
            negation_solver.add(variable.eq(population.get(symbol, 0)))
        negation_solver.add(predicate.negation_formula(input_vars))
        negation_holds = negation_solver.check().status is SolverStatus.SAT

        expected = predicate.evaluate(population)
        assert holds_symbolically == expected, (predicate.describe(), population, assignment)
        assert negation_holds == (not expected)

    @given(populations)
    @settings(max_examples=20, deadline=None)
    def test_threshold_formula(self, population):
        self._assert_agreement(ThresholdPredicate({"x": 2, "y": -3}, 2), population)

    @given(populations)
    @settings(max_examples=20, deadline=None)
    def test_remainder_formula(self, population):
        self._assert_agreement(RemainderPredicate({"x": 1, "y": 2}, 4, 3), population)

    @given(populations)
    @settings(max_examples=15, deadline=None)
    def test_combination_formula(self, population):
        predicate = (ThresholdPredicate({"x": 1, "y": -1}, 1) & RemainderPredicate({"x": 1}, 2, 0)) | (
            ~ThresholdPredicate({"y": 1}, 3)
        )
        self._assert_agreement(predicate, population)


class TestCompiler:
    def test_compile_threshold(self):
        protocol = compile_predicate(ThresholdPredicate({"x": 1, "y": -1}, 1), name="x-minus-y<1")
        assert protocol.name == "x-minus-y<1"
        ok, mismatches = check_predicate_on_inputs(
            protocol, ThresholdPredicate({"x": 1, "y": -1}, 1), max_size=4
        )
        assert ok, mismatches

    def test_compile_remainder(self):
        predicate = RemainderPredicate({"x": 1, "y": 1}, 3, 0)
        protocol = compile_predicate(predicate)
        ok, mismatches = check_predicate_on_inputs(protocol, predicate, max_size=4)
        assert ok, mismatches

    def test_compile_negation(self):
        predicate = ~ThresholdPredicate({"x": 1, "y": -1}, 1)
        protocol = compile_predicate(predicate)
        ok, mismatches = check_predicate_on_inputs(protocol, predicate, max_size=4)
        assert ok, mismatches

    def test_compile_conjunction_aligns_alphabets(self):
        # The two leaves mention different variables; the compiler must extend
        # them to the common alphabet {x, y}.
        predicate = AndPredicate(ThresholdPredicate({"x": -1}, 0), ThresholdPredicate({"y": -1}, 0))
        protocol = compile_predicate(predicate)
        assert set(protocol.input_alphabet) == {"x", "y"}
        ok, mismatches = check_predicate_on_inputs(protocol, predicate, max_size=4)
        assert ok, mismatches

    def test_compile_disjunction(self):
        predicate = OrPredicate(ThresholdPredicate({"x": -1}, 0), ThresholdPredicate({"y": -1}, 0))
        protocol = compile_predicate(predicate)
        ok, mismatches = check_predicate_on_inputs(protocol, predicate, max_size=4)
        assert ok, mismatches

    def test_compile_constant(self):
        protocol = compile_predicate(TruePredicate(["x"]))
        ok, mismatches = check_predicate_on_inputs(protocol, TruePredicate(["x"]), max_size=3)
        assert ok, mismatches

    def test_compile_rejects_empty_variable_set(self):
        with pytest.raises(ValueError):
            compile_predicate(TruePredicate())

    def test_compiled_protocol_records_predicate(self):
        predicate = ThresholdPredicate({"x": 1}, 2)
        protocol = compile_predicate(predicate)
        assert protocol.metadata["compiled_from"] == predicate.describe()
