"""Solver-agnostic constraint IR, pluggable backends, shared analysis context.

The layer between the verification procedures and the solvers:

* :mod:`repro.constraints.ir` — :class:`ConstraintSystem`: typed
  linear-integer constraint systems with named variable groups;
* :mod:`repro.constraints.simplify` — the normalisation pass (constant
  folding, bound tightening, duplicate/subsumed-constraint elimination);
* :mod:`repro.constraints.builders` — :class:`ConstraintBuilder`: the
  paper's recurring constraint blocks (flow equations, trap/siphon cuts,
  terminal-pattern memberships) as reusable builders;
* :mod:`repro.constraints.backends` — the :class:`SolverBackend` registry
  (``smtlite`` DPLL(T), ``scipy-ilp`` direct case splitting, ``portfolio``)
  behind which every property check obtains its solvers;
* :mod:`repro.constraints.direct` — the direct-ILP solving loop;
* :mod:`repro.constraints.context` — :class:`AnalysisContext`: per-protocol
  structural artifacts (terminal patterns, trap/siphon bases, normal form,
  U-sets) computed lazily, exactly once, and shared across property checks
  and engine workers.
"""

from repro.constraints.backends import (
    DEFAULT_BACKEND,
    ConstraintSolver,
    SolverBackend,
    available_backends,
    create_solver,
    get_backend,
    register_backend,
    resolve_backend_name,
    unregister_backend,
)
from repro.constraints.builders import (
    ConstraintBuilder,
    TerminalPattern,
    terminal_support_patterns,
)
from repro.constraints.context import AnalysisContext
from repro.constraints.direct import CaseBudgetExceeded, DirectILPSolver
from repro.constraints.ir import ConstraintSystem
from repro.constraints.simplify import SimplifyStats, simplify_system

__all__ = [
    "AnalysisContext",
    "CaseBudgetExceeded",
    "ConstraintBuilder",
    "ConstraintSolver",
    "ConstraintSystem",
    "DEFAULT_BACKEND",
    "DirectILPSolver",
    "SimplifyStats",
    "SolverBackend",
    "TerminalPattern",
    "available_backends",
    "create_solver",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
    "simplify_system",
    "terminal_support_patterns",
    "unregister_backend",
]
