"""Lazy DPLL(T) solver for quantifier-free linear integer arithmetic.

The solver combines the CDCL SAT engine (:mod:`repro.smtlite.sat`) with a
theory solver for conjunctions of linear integer constraints
(:mod:`repro.smtlite.theory`) in the classical *lemmas on demand* style:

1. formulas are converted to CNF over fresh propositional variables, one per
   arithmetic atom (:mod:`repro.smtlite.cnf`);
2. the SAT solver proposes a complete boolean assignment;
3. the conjunction of arithmetic atoms implied by the assignment is checked
   by the theory backend;
4. on theory conflict, a blocking clause built from the conflict core is
   learned and the loop continues; on theory success the arithmetic model is
   returned.

Incrementality
--------------

The solver is built for the re-posing workloads of the verification layer
(CEGAR refinement, layer-bound sweeps, terminal-pattern enumeration):

* only the atoms asserted *positively* by the boolean model are shipped to
  the theory backend.  The polarity-aware CNF conversion guarantees that
  arithmetic atoms occur only positively in problem clauses, so this
  restriction is sound and keeps the theory conjunctions small;
* theory-check results are memoized keyed on the frozen constraint set (and
  bounds), so near-identical conjunctions posed across refinement rounds and
  :meth:`push`/:meth:`pop` scopes are answered from cache;
* :meth:`push`/:meth:`pop` implement retractable assertions via fresh guard
  literals (clauses of a scope are implied by its guard; popping disables
  the guard permanently while learned lemmas survive);
* :meth:`check` accepts *assumptions* — formulas temporarily assumed for a
  single call without touching the asserted state.

Every model is re-checked against all active formulas with exact integer
arithmetic before it is handed to the caller.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from enum import Enum

from repro.smtlite.cnf import CNFConverter
from repro.smtlite.formula import And, Atom, BoolConst, BoolVar, Formula, Not
from repro.smtlite.sat import SatSolver
from repro.smtlite.terms import IntVar, LinearExpr
from repro.smtlite.theory import (
    TheoryConstraint,
    TheoryError,
    TheoryResult,
    TheorySolverBase,
    default_theory_solver,
)


class SolverStatus(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class Model:
    """A satisfying assignment: integer values plus boolean values."""

    def __init__(self, ints: dict[str, int], bools: dict[str, bool]):
        self._ints = dict(ints)
        self._bools = dict(bools)

    def value(self, item: LinearExpr | str) -> int:
        """Value of an integer variable (by name) or of a linear expression."""
        if isinstance(item, str):
            return self._ints.get(item, 0)
        return item.evaluate({name: self._ints.get(name, 0) for name in item.variables()})

    def bool_value(self, name: str) -> bool:
        return self._bools.get(name, False)

    def ints(self) -> dict[str, int]:
        return dict(self._ints)

    def bools(self) -> dict[str, bool]:
        return dict(self._bools)

    def __repr__(self) -> str:
        return f"Model(ints={self._ints!r}, bools={self._bools!r})"


@dataclass
class SolverResult:
    status: SolverStatus
    model: Model | None = None
    statistics: dict[str, int] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status is SolverStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SolverStatus.UNSAT


@dataclass
class _Scope:
    """One :meth:`Solver.push` level: a guard literal and its formulas."""

    guard_var: int
    formulas: list[Formula] = field(default_factory=list)


class Solver:
    """DPLL(T) solver over linear integer arithmetic.

    Integer variables default to the natural numbers (lower bound 0), which
    is the domain used throughout the paper; different bounds can be declared
    with :meth:`int_var`.
    """

    def __init__(
        self,
        theory: TheorySolverBase | str = "auto",
        max_theory_iterations: int = 200_000,
    ):
        self._converter = CNFConverter()
        self._sat = SatSolver()
        if isinstance(theory, str):
            self._theory = default_theory_solver(theory)
        else:
            self._theory = theory
        self._bounds: dict[str, tuple[int | None, int | None]] = {}
        self._formulas: list[Formula] = []
        self._scopes: list[_Scope] = []
        self._trivially_unsat = False
        self._max_theory_iterations = max_theory_iterations
        # Memoized theory checks, keyed on the frozen constraint set + bounds.
        # Bounded FIFO: the solver now lives for a whole verification run, so
        # entries (including model dicts) must not accumulate indefinitely.
        self._theory_cache: dict[tuple, tuple] = {}
        self._max_theory_cache = 4096
        # Known-unsatisfiable cores with the bounds of their variables at
        # learn time: a superset conjunction posed under the same bounds for
        # those variables is unsat too.  (Bounded: the subsumption scan is
        # linear in the number of cores.)
        self._known_cores: list[tuple[frozenset[TheoryConstraint], dict]] = []
        self._max_known_cores = 256
        # TheoryConstraint per atom (the conversion is pure, so cache it).
        self._atom_constraint: dict[int, TheoryConstraint] = {}
        # Guard literal per assumption formula that needed Tseitin clauses.
        self._assumption_guards: dict[Formula, int] = {}
        self.statistics = {
            "sat_rounds": 0,
            "theory_conflicts": 0,
            "theory_checks": 0,
            "theory_cache_hits": 0,
            "theory_cache_misses": 0,
            "pushes": 0,
            "pops": 0,
            # Lemma/core retention across scopes (cf. DirectILPSolver): cores
            # are content+bounds-keyed, so they stay valid across pops and
            # are deliberately kept.
            "cores_learned": 0,
            "cores_retained_across_pops": 0,
        }

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def int_var(
        self, name: str, lower: int | None = 0, upper: int | None = None
    ) -> LinearExpr:
        """Declare (or re-declare) an integer variable with bounds and return it."""
        self._bounds[name] = (lower, upper)
        return IntVar(name)

    def int_vars(self, names: Iterable[str], lower: int | None = 0, upper: int | None = None) -> list[LinearExpr]:
        return [self.int_var(name, lower, upper) for name in names]

    def add(self, *formulas: Formula) -> None:
        """Assert one or more formulas (conjunctively).

        Inside a :meth:`push` scope the formulas are retractable: they hold
        until the matching :meth:`pop`.
        """
        guard = self._scopes[-1].guard_var if self._scopes else None
        for formula in formulas:
            if not isinstance(formula, Formula):
                raise TypeError(f"expected a Formula, got {formula!r}")
            if guard is None:
                self._formulas.append(formula)
            else:
                self._scopes[-1].formulas.append(formula)
            self._add_clauses(formula, guard)
            if self._trivially_unsat:
                return

    def _add_clauses(self, formula: Formula, guard: int | None) -> None:
        """Convert ``formula`` to CNF and assert it (guarded when requested)."""
        clauses, trivially_false = self._converter.convert(formula)
        if trivially_false:
            if guard is None:
                self._trivially_unsat = True
                return
            clauses = [[]]
        self._sat.ensure_vars(self._converter.variable_count)
        for clause in clauses:
            literals = clause if guard is None else [-guard, *clause]
            if not self._sat.add_clause(literals):
                self._trivially_unsat = True
                return

    # ------------------------------------------------------------------
    # Incremental interface
    # ------------------------------------------------------------------

    def push(self) -> None:
        """Open a retractable assertion scope."""
        guard = self._converter.fresh_var()
        self._sat.ensure_vars(self._converter.variable_count)
        self._scopes.append(_Scope(guard_var=guard))
        self.statistics["pushes"] += 1

    def pop(self) -> None:
        """Retract every formula asserted since the matching :meth:`push`.

        Learned lemmas (SAT clauses and cached theory results) survive: the
        scope's clauses are disabled by pinning its guard literal false.
        """
        if not self._scopes:
            raise RuntimeError("pop() without a matching push()")
        scope = self._scopes.pop()
        self._sat.add_clause([-scope.guard_var])
        self.statistics["pops"] += 1
        if self._known_cores:
            retained = len(self._known_cores)
            self.statistics["cores_retained_across_pops"] += retained
            from repro.constraints.incremental import bump

            bump("cores_retained_across_pops", retained)
            bump("pops_with_live_cores")

    @property
    def num_scopes(self) -> int:
        return len(self._scopes)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def check(self, assumptions: Sequence[Formula] = ()) -> SolverResult:
        """Decide satisfiability of the asserted formulas.

        ``assumptions`` are formulas assumed true for this call only; a
        subsequent :meth:`check` without them is unaffected.
        """
        if self._trivially_unsat:
            return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))

        assumption_formulas: list[Formula] = []
        sat_assumptions: list[int] = [scope.guard_var for scope in self._scopes]
        for formula in assumptions:
            literal = self._assumption_literal(formula)
            if literal is None:
                continue  # trivially true assumption
            if literal is False:
                return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))
            sat_assumptions.append(literal)
            assumption_formulas.append(formula)

        for _ in range(self._max_theory_iterations):
            self.statistics["sat_rounds"] += 1
            sat_answer = self._sat.solve(assumptions=sat_assumptions)
            if sat_answer is False:
                return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))
            if sat_answer is None:  # pragma: no cover - no conflict budget is set
                return SolverResult(SolverStatus.UNKNOWN, statistics=dict(self.statistics))

            asserted, literals = self._asserted_constraints()
            bounds = self._effective_bounds(asserted)
            self.statistics["theory_checks"] += 1
            try:
                theory_result = self._cached_theory_check(asserted, bounds)
            except TheoryError:
                return SolverResult(SolverStatus.UNKNOWN, statistics=dict(self.statistics))

            if theory_result.satisfiable:
                model = self._build_model(theory_result.model or {})
                self._verify_model(model, assumption_formulas)
                return SolverResult(SolverStatus.SAT, model=model, statistics=dict(self.statistics))

            self.statistics["theory_conflicts"] += 1
            core = theory_result.core or list(range(len(asserted)))
            blocking_clause = [-literals[index] for index in core]
            if not blocking_clause:
                return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))
            if not self._sat.add_clause(blocking_clause):
                return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))
        return SolverResult(SolverStatus.UNKNOWN, statistics=dict(self.statistics))

    def check_conjunction(self, formulas: Iterable[Formula]) -> SolverResult:
        """Decide a pure conjunction of atoms with a single (cached) theory call.

        The formulas must be conjunctive (atoms, conjunctions of atoms and
        boolean constants); no SAT search is involved, so this is the cheap
        path for feasibility pre-filtering.  The query goes through the same
        memo cache as the DPLL(T) loop, so re-posed conjunctions — e.g. the
        shared side of many terminal-pattern pairs — are answered instantly.
        Asserted formulas are *not* taken into account.
        """
        atoms: list[Atom] = []
        stack = list(formulas)
        while stack:
            formula = stack.pop()
            if isinstance(formula, Atom):
                atoms.append(formula)
            elif isinstance(formula, BoolConst):
                if not formula.value:
                    return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))
            elif isinstance(formula, And):
                stack.extend(formula.operands)
            else:
                raise TypeError(f"check_conjunction expects conjunctive formulas, got {formula!r}")

        constraints = []
        for atom in atoms:
            expr = atom.expr
            constraints.append(TheoryConstraint.from_expr(expr.coefficients, expr.constant))
        bounds = self._effective_bounds(constraints)
        self.statistics["theory_checks"] += 1
        try:
            result = self._cached_theory_check(constraints, bounds)
        except TheoryError:
            return SolverResult(SolverStatus.UNKNOWN, statistics=dict(self.statistics))
        if result.satisfiable:
            return SolverResult(
                SolverStatus.SAT,
                model=Model(result.model or {}, {}),
                statistics=dict(self.statistics),
            )
        return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _assumption_literal(self, formula: Formula) -> int | None | bool:
        """SAT literal equivalent to assuming ``formula`` for one check.

        Returns ``None`` for trivially true assumptions and ``False`` for
        trivially false ones.  Literal-shaped formulas map directly onto
        their propositional variable; anything else is encoded once behind a
        fresh guard literal (cached per formula).
        """
        if not isinstance(formula, Formula):
            raise TypeError(f"assumptions must be formulas, got {formula!r}")
        if isinstance(formula, BoolConst):
            return None if formula.value else False
        if isinstance(formula, Atom):
            literal = self._converter.var_for_atom(formula)
            self._sat.ensure_vars(self._converter.variable_count)
            return literal
        if isinstance(formula, BoolVar):
            literal = self._converter.var_for_boolvar(formula.name)
            self._sat.ensure_vars(self._converter.variable_count)
            return literal
        if isinstance(formula, Not) and isinstance(formula.operand, BoolVar):
            literal = self._converter.var_for_boolvar(formula.operand.name)
            self._sat.ensure_vars(self._converter.variable_count)
            return -literal
        guard = self._assumption_guards.get(formula)
        if guard is None:
            guard = self._converter.fresh_var()
            self._sat.ensure_vars(self._converter.variable_count)
            self._assumption_guards[formula] = guard
            self._add_clauses(formula, guard)
        return guard

    def _asserted_constraints(self) -> tuple[list[TheoryConstraint], list[int]]:
        """Theory constraints asserted positively by the SAT model.

        The CNF conversion is polarity-aware and negation normal form absorbs
        arithmetic negation into the atoms, so atoms occur only positively in
        problem clauses; the conjunction of the *true* atoms is therefore all
        the theory backend needs to see.  (Blocking clauses introduce
        negative occurrences, but they are theory-valid and hence satisfied
        by every arithmetic model.)
        """
        constraints: list[TheoryConstraint] = []
        literals: list[int] = []
        atom_constraint = self._atom_constraint
        model_value = self._sat.model_value
        for atom, variable in self._converter.atom_to_var.items():
            if not model_value(variable, default=False):
                continue
            constraint = atom_constraint.get(variable)
            if constraint is None:
                expr = atom.expr
                constraint = TheoryConstraint.from_expr(expr.coefficients, expr.constant)
                atom_constraint[variable] = constraint
            constraints.append(constraint)
            literals.append(variable)
        return constraints, literals

    def _cached_theory_check(
        self, constraints: list[TheoryConstraint], bounds: dict[str, tuple[int | None, int | None]]
    ) -> TheoryResult:
        """Theory check with memoization on the frozen constraint set.

        Two reuse layers, both exact:

        1. identical conjunctions are answered from the memo table — this is
           what makes the re-posed side skeletons of the verification layer
           (pattern pre-checks, layer sweeps) near-free;
        2. a conjunction containing a known unsatisfiable core is unsat
           (subsumption; mostly relevant for :meth:`check_conjunction`
           queries, which bypass the SAT engine's blocking clauses).
        """
        constraint_set = frozenset(constraints)
        key = (constraint_set, frozenset(bounds.items()))
        cached = self._theory_cache.get(key)
        if cached is not None:
            self.statistics["theory_cache_hits"] += 1
            satisfiable, payload = cached
            if satisfiable:
                return TheoryResult(True, model=dict(payload))
            return TheoryResult(False, core=self._core_indices(constraints, payload))

        for core, core_bounds in self._known_cores:
            # The core's infeasibility depends only on the bounds of its own
            # variables, which may have been re-declared since it was learned.
            if core <= constraint_set and all(
                bounds.get(name, (0, None)) == bound for name, bound in core_bounds.items()
            ):
                self.statistics["theory_cache_hits"] += 1
                if len(self._theory_cache) >= self._max_theory_cache:
                    self._theory_cache.pop(next(iter(self._theory_cache)))
                self._theory_cache[key] = (False, core)
                return TheoryResult(False, core=self._core_indices(constraints, core))

        self.statistics["theory_cache_misses"] += 1
        result = self._theory.check(constraints, bounds)
        if len(self._theory_cache) >= self._max_theory_cache:
            self._theory_cache.pop(next(iter(self._theory_cache)))
        if result.satisfiable:
            self._theory_cache[key] = (True, dict(result.model or {}))
        else:
            core_indices = result.core or range(len(constraints))
            core_constraints = frozenset(constraints[index] for index in core_indices)
            self._theory_cache[key] = (False, core_constraints)
            if len(self._known_cores) < self._max_known_cores:
                core_bounds = {
                    name: bounds.get(name, (0, None))
                    for constraint in core_constraints
                    for name, _ in constraint.coefficients
                }
                self._known_cores.append((core_constraints, core_bounds))
                self.statistics["cores_learned"] += 1
                from repro.constraints.incremental import bump

                bump("cores_learned")
        return result

    @staticmethod
    def _core_indices(
        constraints: list[TheoryConstraint], core: frozenset[TheoryConstraint]
    ) -> list[int] | None:
        index_of: dict[TheoryConstraint, int] = {}
        for index, constraint in enumerate(constraints):
            index_of.setdefault(constraint, index)
        indices = sorted(index_of[constraint] for constraint in core if constraint in index_of)
        return indices or None

    def _effective_bounds(
        self, constraints: list[TheoryConstraint]
    ) -> dict[str, tuple[int | None, int | None]]:
        bounds = dict(self._bounds)
        for constraint in constraints:
            # Iterate the (sorted) coefficient tuples rather than the
            # variables() set: the insertion order determines the backend's
            # column order, and hash-randomized iteration would make solver
            # trajectories — and run times — vary wildly between processes.
            for name, _ in constraint.coefficients:
                bounds.setdefault(name, (0, None))
        return bounds

    def _active_formulas(self) -> Iterable[Formula]:
        yield from self._formulas
        for scope in self._scopes:
            yield from scope.formulas

    def _build_model(self, ints: dict[str, int]) -> Model:
        values = dict(ints)
        for formula in self._active_formulas():
            for name in formula.int_variables():
                if name not in values:
                    lower, upper = self._bounds.get(name, (0, None))
                    if lower is not None:
                        values[name] = int(lower)
                    elif upper is not None and upper < 0:
                        values[name] = int(upper)
                    else:
                        values[name] = 0
        bools = {
            name: self._sat.model_value(variable, default=False)
            for name, variable in self._converter.boolvar_to_var.items()
        }
        return Model(values, bools)

    def _verify_model(self, model: Model, assumptions: Sequence[Formula] = ()) -> None:
        """Exact sanity check: every active formula holds in the model."""
        ints = model.ints()
        bools = model.bools()
        for formula in list(self._active_formulas()) + list(assumptions):
            if not formula.evaluate(ints, bools):
                raise RuntimeError(
                    "internal error: the produced model does not satisfy an asserted formula; "
                    f"formula={formula!r}"
                )
