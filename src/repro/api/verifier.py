"""The unified verification session object.

One :class:`Verifier` owns one :class:`~repro.api.options.VerificationOptions`
bundle, one (lazily created, reused) parallel engine and one result cache,
and exposes the whole pipeline of the paper through two methods::

    with Verifier(jobs=4) as verifier:
        report = verifier.check(protocol, properties=["ws3", "correctness"])
        batch = verifier.check_many(protocols)

``check`` returns a lossless :class:`~repro.api.report.VerificationReport`;
``check_many`` fans whole protocols over the worker pool and serves repeat
instances from the content-addressed result cache.  The deprecated
per-property entry points (``verify_ws3``, ``check_strong_consensus``, ...)
are thin shims over the same machinery.
"""

from __future__ import annotations

import inspect
import time
from collections.abc import Iterable, Sequence

from repro.api.options import VerificationOptions
from repro.api.properties import property_checker
from repro.api.report import VerificationReport

#: The default property set of a bare ``verifier.check(protocol)``.
DEFAULT_PROPERTIES = ("ws3",)

#: Analysis contexts kept per session (FIFO-bounded by protocol hash).
_MAX_CONTEXTS = 16


def _normalize_properties(properties) -> tuple[str, ...]:
    if properties is None:
        return DEFAULT_PROPERTIES
    if isinstance(properties, str):
        return (properties,)
    names = tuple(properties)
    if not names:
        raise ValueError("at least one property must be requested")
    return names


class Verifier:
    """A verification session: validated options + reusable engine + cache.

    Parameters
    ----------
    options:
        A :class:`VerificationOptions` bundle; omitted fields come from the
        defaults.  Keyword overrides are applied on top, so
        ``Verifier(jobs=4, theory="exact")`` works without building the
        options object by hand.
    engine:
        An existing :class:`~repro.engine.scheduler.VerificationEngine` to
        schedule on (left running on :meth:`close`); mutually exclusive
        with ``jobs > 1`` in the options, which makes the session create —
        and own — a pool lazily on first use.
    cache:
        An existing :class:`~repro.engine.cache.ResultCache`; by default a
        cache is opened at ``options.cache_dir`` (if set) on first
        ``check_many`` call.
    """

    def __init__(self, options: VerificationOptions | None = None, *, engine=None, cache=None, **overrides):
        if options is None:
            options = VerificationOptions(**overrides)
        elif overrides:
            options = options.replace(**overrides)
        if engine is not None and options.jobs != 1:
            raise ValueError("pass either jobs>1 in the options or an engine, not both")
        self.options = options
        self._engine = engine
        self._owns_engine = False
        self._cache = cache
        self._closed = False
        #: Per-protocol AnalysisContext shared by every property check of
        #: the session, so structural artifacts (terminal patterns,
        #: trap/siphon bases, normal form) are computed at most once per
        #: protocol — however many checks the session runs.
        self._contexts: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the session's own worker pool (if one was created)."""
        if self._owns_engine and self._engine is not None:
            self._engine.shutdown()
            self._engine = None
            self._owns_engine = False
        self._closed = True

    def __enter__(self) -> "Verifier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-timing dependent
        # Safety net for sessions used without the context manager: an
        # owned worker pool must not outlive the session object.
        try:
            self.close()
        except Exception:
            pass

    @property
    def engine(self):
        """The session's engine (``None`` until a parallel check runs)."""
        return self._engine

    def _engine_for_call(self):
        if self._closed:
            raise RuntimeError("this Verifier session is closed")
        if self._engine is None and self.options.jobs > 1:
            from repro.engine.scheduler import VerificationEngine

            self._engine = VerificationEngine(jobs=self.options.jobs)
            self._owns_engine = True
        return self._engine

    def _cache_for_call(self):
        if self._cache is None and self.options.cache_dir is not None:
            from repro.engine.cache import ResultCache

            self._cache = ResultCache(self.options.cache_dir)
        return self._cache

    def analysis_context(self, protocol):
        """The session's shared :class:`~repro.constraints.context.AnalysisContext`.

        One context per protocol (by content hash), reused across every
        :meth:`check` call of the session.
        """
        from repro.constraints.context import AnalysisContext
        from repro.engine.cache import protocol_content_hash

        key = protocol_content_hash(protocol)
        context = self._contexts.get(key)
        if context is None:
            context = AnalysisContext(protocol).seed_protocol_key(key)
            if len(self._contexts) >= _MAX_CONTEXTS:
                self._contexts.pop(next(iter(self._contexts)))
            self._contexts[key] = context
        return context

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def check(
        self,
        protocol,
        properties: Sequence[str] | str | None = None,
        *,
        predicate=None,
    ) -> VerificationReport:
        """Check the requested properties of one protocol.

        ``properties`` names come from the registry
        (:func:`repro.api.properties.available_properties`); the default is
        ``["ws3"]``.  ``predicate`` overrides the protocol's documented
        ``metadata["predicate"]`` for the ``"correctness"`` property.
        """
        names = _normalize_properties(properties)
        checkers = [property_checker(name) for name in names]  # fail fast on unknown names
        engine = self._engine_for_call()
        return self._run_checkers(protocol, names, checkers, engine, predicate)

    def _run_checkers(self, protocol, names, checkers, engine, predicate) -> VerificationReport:
        start = time.perf_counter()
        context = self.analysis_context(protocol)
        results = [
            self._run_checker(checker, protocol, engine, predicate, context)
            for checker in checkers
        ]
        statistics = {
            "time": time.perf_counter() - start,
            "jobs": engine.jobs if engine is not None else 1,
            "properties": list(names),
        }
        return VerificationReport(
            protocol_name=protocol.name,
            protocol_hash=context.protocol_key,
            properties=results,
            options=self.options.to_dict(),
            statistics=statistics,
        )

    def _run_checker(self, checker, protocol, engine, predicate, context):
        """Invoke one checker, passing the shared context when it accepts one.

        Custom checkers written against the pre-context interface (no
        ``context`` keyword) keep working unchanged.
        """
        kwargs = {"engine": engine, "predicate": predicate}
        try:
            accepts_context = "context" in inspect.signature(checker.check).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            accepts_context = False
        if accepts_context:
            kwargs["context"] = context
        return checker.check(protocol, self.options, **kwargs)

    def check_many(
        self,
        protocols: Iterable,
        properties: Sequence[str] | str | None = None,
    ):
        """Check many protocols, with across-protocol fan-out and caching.

        Returns a :class:`~repro.engine.batch.BatchResult` whose items carry
        full :class:`VerificationReport` objects.  Protocols appearing more
        than once (by content hash) are verified once; with a cache
        configured, known verdicts are served from disk.
        """
        from repro.engine.batch import run_batch

        names = _normalize_properties(properties)
        for name in names:
            property_checker(name)  # fail fast on unknown names
        return run_batch(
            list(protocols),
            names,
            self.options,
            engine=self._engine_for_call(),
            cache=self._cache_for_call(),
            check_one=lambda protocol, engine: self._run_checkers(
                protocol, names, [property_checker(name) for name in names], engine, None
            ),
        )
