"""Command-line front end (the Peregrine-style "repro-verify" tool).

Examples
--------
Verify a library protocol::

    repro-verify family majority
    repro-verify family flock-of-birds --parameter 10

Verify a protocol stored as JSON::

    repro-verify file my_protocol.json --simulate "A=3,B=5"

Verify a whole batch on four worker processes, with the result cache::

    repro-verify batch majority broadcast flock-of-birds:6 my_protocol.json \
        --jobs 4 --cache-dir .repro-cache

List the available families::

    repro-verify list
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.io.serialization import protocol_from_json
from repro.protocols.library import PROTOCOL_FAMILIES
from repro.protocols.simulation import Simulator
from repro.verification.correctness import check_correctness
from repro.verification.ws3 import verify_ws3


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Decide WS3 membership (well-specification) of population protocols.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list the built-in protocol families")

    family_parser = subparsers.add_parser("family", help="verify a built-in protocol family")
    family_parser.add_argument("name", choices=sorted(PROTOCOL_FAMILIES), help="family name")
    family_parser.add_argument(
        "--parameter", type=int, default=None, help="primary size parameter (where applicable)"
    )
    _add_common_options(family_parser)

    file_parser = subparsers.add_parser("file", help="verify a protocol stored as JSON")
    file_parser.add_argument("path", help="path to the protocol JSON file")
    _add_common_options(file_parser)

    batch_parser = subparsers.add_parser(
        "batch",
        help="verify many protocols at once (process-pool fan-out + result cache)",
    )
    batch_parser.add_argument(
        "specs",
        nargs="+",
        metavar="SPEC",
        help=(
            "a protocol: either 'family' or 'family:parameter' (e.g. flock-of-birds:6), "
            "or a path to a protocol JSON file"
        ),
    )
    batch_parser.add_argument(
        "--jobs", type=_positive_int, default=1, help="number of worker processes (default: 1)"
    )
    batch_parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="directory of the content-addressed result cache (default: .repro-cache)",
    )
    batch_parser.add_argument(
        "--no-cache", action="store_true", help="verify everything, touching no cache"
    )
    batch_parser.add_argument(
        "--strategy",
        default="auto",
        choices=["auto", "hint", "single", "scc", "smt"],
        help="partition-search strategy for LayeredTermination",
    )
    batch_parser.add_argument(
        "--theory",
        default="auto",
        choices=["auto", "scipy", "exact"],
        help="constraint-solver backend",
    )
    batch_parser.add_argument("--json", action="store_true", help="print the verdicts as JSON")

    return parser


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strategy",
        default="auto",
        choices=["auto", "hint", "single", "scc", "smt"],
        help="partition-search strategy for LayeredTermination",
    )
    parser.add_argument(
        "--theory",
        default="auto",
        choices=["auto", "scipy", "exact"],
        help="constraint-solver backend",
    )
    parser.add_argument(
        "--check-correctness",
        action="store_true",
        help="also check the protocol against its documented predicate (if any)",
    )
    parser.add_argument(
        "--simulate",
        metavar="INPUT",
        default=None,
        help='simulate one run on an input such as "A=3,B=5"',
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the parallel verification engine (default: 1, serial)",
    )
    parser.add_argument("--json", action="store_true", help="print the verdict as JSON")


def _parse_input(text: str) -> dict:
    population = {}
    for part in text.split(","):
        symbol, _, count = part.partition("=")
        population[symbol.strip()] = int(count)
    return population


def _load_protocol(args):
    if args.command == "family":
        factory = PROTOCOL_FAMILIES[args.name]
        return factory(args.parameter) if args.parameter is not None else factory()
    with open(args.path, encoding="utf-8") as handle:
        return protocol_from_json(handle.read())


def _load_batch_spec(spec: str):
    """Resolve one batch SPEC: 'family', 'family:parameter' or a JSON path.

    Family names take precedence, so a stray file or directory in the
    working directory that happens to share a family's name cannot shadow
    the library protocol.
    """
    import os

    name, _, parameter = spec.partition(":")
    is_family = name in PROTOCOL_FAMILIES
    if not is_family and (spec.endswith(".json") or os.path.exists(spec)):
        try:
            with open(spec, encoding="utf-8") as handle:
                return protocol_from_json(handle.read())
        except OSError as error:
            raise SystemExit(f"cannot read protocol file {spec!r}: {error}")
        except (ValueError, KeyError, TypeError) as error:
            # json.JSONDecodeError is a ValueError; missing/odd protocol
            # fields surface as KeyError/TypeError/ProtocolError(ValueError).
            raise SystemExit(f"{spec!r} is not a valid protocol JSON file: {error!r}")
    if not is_family:
        raise SystemExit(
            f"unknown protocol family or file {spec!r}; "
            f"families: {', '.join(sorted(PROTOCOL_FAMILIES))}"
        )
    factory = PROTOCOL_FAMILIES[name]
    if not parameter:
        try:
            return factory()
        except TypeError:
            raise SystemExit(f"family {name!r} needs a parameter: use {name}:<n>")
    try:
        value = int(parameter)
    except ValueError:
        raise SystemExit(f"parameter of {spec!r} must be an integer, got {parameter!r}")
    return factory(value)


def _run_batch(args) -> int:
    from repro.engine import verify_many

    protocols = [_load_batch_spec(spec) for spec in args.specs]
    cache_dir = None if args.no_cache else args.cache_dir
    batch = verify_many(
        protocols,
        jobs=args.jobs,
        cache_dir=cache_dir,
        strategy=args.strategy,
        theory=args.theory,
    )
    cache_stats = batch.statistics.get("cache") or {"hits": 0, "misses": 0}
    if args.json:
        payload = {
            "protocols": [
                {
                    "protocol": item.protocol_name,
                    "hash": item.protocol_hash,
                    "is_ws3": item.is_ws3,
                    "from_cache": item.from_cache,
                    "time_seconds": item.time_seconds,
                    "summary": item.summary,
                }
                for item in batch
            ],
            "statistics": batch.statistics,
        }
        print(json.dumps(payload, indent=2))
    else:
        for item in batch:
            verdict = "WS3" if item.is_ws3 else "NOT PROVEN"
            source = "cache" if item.from_cache else f"{item.time_seconds:.3f}s"
            print(f"{item.protocol_name:40s} {verdict:11s} [{source}]")
        print(
            f"batch: {len(batch)} protocol(s), {batch.statistics['verified']} verified, "
            f"{cache_stats['hits']} cache hit(s), jobs={batch.statistics['jobs']}, "
            f"total {batch.statistics['time']:.3f}s"
        )
    return 0 if batch.all_ws3 else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-verify`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in sorted(PROTOCOL_FAMILIES):
            print(name)
        return 0

    if args.command == "batch":
        return _run_batch(args)

    protocol = _load_protocol(args)
    # One engine (one worker pool) for everything this invocation verifies.
    engine = None
    if args.jobs > 1:
        from repro.engine import VerificationEngine

        engine = VerificationEngine(jobs=args.jobs)
    try:
        result = verify_ws3(protocol, strategy=args.strategy, theory=args.theory, engine=engine)

        correctness = None
        if args.check_correctness:
            predicate = protocol.metadata.get("predicate")
            if predicate is None:
                print("no documented predicate attached to this protocol; skipping correctness check")
            else:
                correctness = check_correctness(
                    protocol, predicate, theory=args.theory, engine=engine
                )
    finally:
        if engine is not None:
            engine.shutdown()

    if args.json:
        payload = {
            "protocol": protocol.name,
            "states": protocol.num_states,
            "transitions": protocol.num_transitions,
            "is_ws3": result.is_ws3,
            "layered_termination": result.layered_termination.holds,
            "strong_consensus": (
                result.strong_consensus.holds if result.strong_consensus is not None else None
            ),
            "time_seconds": result.statistics["time"],
        }
        if correctness is not None:
            payload["computes_documented_predicate"] = correctness.holds
        print(json.dumps(payload, indent=2))
    else:
        print(result.summary())
        if correctness is not None:
            predicate = protocol.metadata["predicate"]
            verdict = "computes" if correctness.holds else "DOES NOT compute"
            print(f"  correctness: {verdict} the predicate {predicate.describe()}")
            if correctness.counterexample is not None:
                print(f"    {correctness.counterexample.describe()}")

    if args.simulate:
        simulator = Simulator(protocol, seed=0)
        run = simulator.run(input_population=_parse_input(args.simulate))
        print(
            f"  simulation of {args.simulate}: output={run.output} after {run.steps} interactions "
            f"(converged={run.converged})"
        )

    return 0 if result.is_ws3 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
