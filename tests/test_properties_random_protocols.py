"""Property-based tests on randomly generated population protocols.

These check the paper's basic structural facts on arbitrary (small, random)
protocols rather than on the hand-written families:

* interactions preserve the number of agents;
* the flow equations (Equation 1) hold along every real execution;
* a marked trap stays marked and an empty siphon stays empty along every
  real execution (Observation 11);
* potential reachability over-approximates real reachability;
* every configuration reached by simulation of a silent protocol and
  declared terminal really is terminal.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import PopulationProtocol, Transition
from repro.protocols.semantics import enabled_transitions, is_terminal
from repro.protocols.simulation import Simulator
from repro.verification.flow import (
    PotentialReachabilityWitness,
    check_potential_reachability,
    flow_from_transition_sequence,
    satisfies_flow_equations,
)
from repro.petri.traps_siphons import is_siphon, is_trap


@st.composite
def random_protocols(draw):
    """A small random protocol together with a random initial configuration."""
    num_states = draw(st.integers(min_value=2, max_value=4))
    states = [f"q{i}" for i in range(num_states)]
    num_transitions = draw(st.integers(min_value=1, max_value=5))
    transitions = []
    for index in range(num_transitions):
        pre = draw(st.tuples(st.sampled_from(states), st.sampled_from(states)))
        post = draw(st.tuples(st.sampled_from(states), st.sampled_from(states)))
        transitions.append(Transition.make(pre, post, name=f"t{index}"))
    outputs = {state: draw(st.sampled_from([0, 1])) for state in states}
    protocol = PopulationProtocol(
        states=states,
        transitions=transitions,
        input_alphabet=states,
        input_map={state: state for state in states},
        output_map=outputs,
        name="random",
    )
    counts = {
        state: draw(st.integers(min_value=0, max_value=3)) for state in states
    }
    total = sum(counts.values())
    if total < 2:
        counts[states[0]] = counts.get(states[0], 0) + (2 - total)
    return protocol, Multiset({s: c for s, c in counts.items() if c > 0})


def random_walk(protocol, configuration, steps, seed):
    """A random sequence of real steps from the configuration."""
    rng = random.Random(seed)
    sequence = []
    current = configuration
    for _ in range(steps):
        enabled = enabled_transitions(protocol, current)
        if not enabled:
            break
        transition = rng.choice(enabled)
        sequence.append(transition)
        current = transition.fire(current)
    return sequence, current


class TestRandomProtocolInvariants:
    @given(random_protocols(), st.integers(min_value=0, max_value=8), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_agent_count_preserved(self, data, steps, seed):
        protocol, configuration = data
        _, final = random_walk(protocol, configuration, steps, seed)
        assert final.size() == configuration.size()

    @given(random_protocols(), st.integers(min_value=0, max_value=8), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_flow_equations_hold_along_executions(self, data, steps, seed):
        protocol, configuration = data
        sequence, final = random_walk(protocol, configuration, steps, seed)
        flow = flow_from_transition_sequence(sequence)
        assert satisfies_flow_equations(configuration, final, flow)

    @given(random_protocols(), st.integers(min_value=0, max_value=8), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_potential_reachability_over_approximates(self, data, steps, seed):
        protocol, configuration = data
        sequence, final = random_walk(protocol, configuration, steps, seed)
        witness = PotentialReachabilityWitness(
            source=configuration, target=final, flow=flow_from_transition_sequence(sequence)
        )
        ok, reason = check_potential_reachability(protocol, witness)
        assert ok, reason

    @given(random_protocols(), st.integers(min_value=0, max_value=8), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_traps_stay_marked_and_siphons_stay_empty(self, data, steps, seed):
        protocol, configuration = data
        sequence, final = random_walk(protocol, configuration, steps, seed)
        states = sorted(protocol.states)
        # Try a few candidate subsets for trap/siphon behaviour.
        for size in (1, 2):
            for start in range(len(states) - size + 1):
                subset = set(states[start : start + size])
                if is_trap(protocol, subset, protocol.transitions) and configuration.total(subset) > 0:
                    assert final.total(subset) > 0
                if is_siphon(protocol, subset, protocol.transitions) and configuration.total(subset) == 0:
                    assert final.total(subset) == 0

    @given(random_protocols(), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_simulation_final_configuration_is_terminal_when_converged(self, data, seed):
        protocol, configuration = data
        simulator = Simulator(protocol, seed=seed, max_steps=300)
        result = simulator.run(configuration=configuration)
        if result.converged:
            assert is_terminal(protocol, result.final)
        assert result.final.size() == configuration.size()
