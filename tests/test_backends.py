"""Tests for the solver-backend registry, the direct-ILP solver and the portfolio."""

from __future__ import annotations

import random

import pytest

from repro.constraints.backends import (
    PortfolioSolver,
    available_backends,
    create_solver,
    get_backend,
    register_backend,
    resolve_backend_name,
    unregister_backend,
)
from repro.constraints.direct import CaseBudgetExceeded, DirectILPSolver
from repro.smtlite.formula import Implies, Or
from repro.smtlite.solver import Solver, SolverStatus
from repro.smtlite.terms import IntVar


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(available_backends()) >= {"smtlite", "scipy-ilp", "portfolio"}

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            get_backend("z3")

    def test_none_resolves_to_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_name(None) == "smtlite"
        assert resolve_backend_name("portfolio") == "portfolio"

    def test_none_resolves_through_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "portfolio")
        assert resolve_backend_name(None) == "portfolio"

    def test_duplicate_registration_guard(self):
        class Custom:
            name = "custom-backend"

            def create_solver(self, theory="auto"):
                return Solver(theory=theory)

        try:
            register_backend(Custom())
            with pytest.raises(ValueError, match="already registered"):
                register_backend(Custom())
            register_backend(Custom(), replace=True)
            assert create_solver("custom-backend") is not None
        finally:
            unregister_backend("custom-backend")
        with pytest.raises(ValueError):
            get_backend("custom-backend")

    def test_nameless_backend_rejected(self):
        class Nameless:
            name = ""

        with pytest.raises(ValueError, match="must define a name"):
            register_backend(Nameless())


class TestDirectILPSolver:
    def test_conjunctive_sat_and_unsat(self):
        x, y = IntVar("x"), IntVar("y")
        solver = DirectILPSolver()
        solver.add(x + y >= 4, x <= 2, y <= 2)
        result = solver.check()
        assert result.status is SolverStatus.SAT
        assert result.model.value(x) + result.model.value(y) >= 4
        solver.add(x + y <= 3)
        assert solver.check().status is SolverStatus.UNSAT

    def test_disjunctions_are_case_split(self):
        x = IntVar("x")
        solver = DirectILPSolver()
        solver.add(Or(x >= 10, x <= 2))
        solver.add(x >= 3)
        result = solver.check()
        assert result.status is SolverStatus.SAT
        assert result.model.value(x) >= 10
        assert solver.statistics["direct_checks"] >= 1
        assert solver.statistics["fallbacks"] == 0

    def test_push_pop_scopes(self):
        x = IntVar("x")
        solver = DirectILPSolver()
        solver.int_var("x", lower=0, upper=9)
        solver.add(x >= 1)
        solver.push()
        solver.add(x >= 100)
        assert solver.check().status is SolverStatus.UNSAT
        solver.pop()
        assert solver.check().status is SolverStatus.SAT
        with pytest.raises(RuntimeError):
            solver.pop()

    def test_assumptions_do_not_persist(self):
        x = IntVar("x")
        solver = DirectILPSolver()
        solver.add(x <= 5)
        assert solver.check(assumptions=[x >= 7]).status is SolverStatus.UNSAT
        assert solver.check().status is SolverStatus.SAT

    def test_budget_overflow_falls_back_to_dpllt(self):
        variables = [IntVar(f"b{index}") for index in range(8)]
        solver = DirectILPSolver(max_cases=4, fallback=True)
        for variable in variables:
            solver.add(Or(variable <= 0, variable >= 2))
        solver.add(sum(variables[1:], variables[0]) >= 15)
        result = solver.check()
        assert result.status is SolverStatus.SAT
        assert solver.statistics["fallbacks"] == 1
        # The fallback mirror replays the construction log exactly.
        assert solver._mirror is not None

    def test_budget_overflow_raises_without_fallback(self):
        variables = [IntVar(f"b{index}") for index in range(8)]
        solver = DirectILPSolver(max_cases=4, fallback=False)
        for variable in variables:
            solver.add(Or(variable <= 0, variable >= 2))
        with pytest.raises(CaseBudgetExceeded):
            solver.check()

    def test_check_conjunction_matches_solver(self):
        x, y = IntVar("x"), IntVar("y")
        formulas = [x + y >= 3, x <= 1, y <= 1]
        direct = DirectILPSolver().check_conjunction(formulas)
        dpllt = Solver().check_conjunction(formulas)
        assert direct.status == dpllt.status is SolverStatus.UNSAT

    def test_models_are_reverified(self):
        x = IntVar("x")
        solver = DirectILPSolver()
        solver.add(Implies(x >= 1, x >= 5), x >= 1)
        result = solver.check()
        assert result.status is SolverStatus.SAT
        assert result.model.value(x) >= 5


class TestPortfolioSolver:
    def test_direct_wins_on_conjunctive_queries(self):
        x = IntVar("x")
        solver = PortfolioSolver()
        solver.add(x >= 3, x <= 9)
        assert solver.check().status is SolverStatus.SAT
        assert solver.statistics["direct_wins"] == 1
        assert solver.statistics["dpllt_wins"] == 0

    def test_dpllt_takes_over_past_the_case_budget(self):
        variables = [IntVar(f"b{index}") for index in range(10)]
        solver = PortfolioSolver(direct_max_cases=4)
        for variable in variables:
            solver.add(Or(variable <= 0, variable >= 2))
        assert solver.check().status is SolverStatus.SAT
        assert solver.statistics["dpllt_wins"] == 1

    def test_scopes_stay_in_sync(self):
        x = IntVar("x")
        solver = PortfolioSolver()
        solver.add(x <= 5)
        solver.push()
        solver.add(x >= 7)
        assert solver.check().status is SolverStatus.UNSAT
        solver.pop()
        assert solver.check().status is SolverStatus.SAT


@pytest.mark.parametrize("seed", range(12))
def test_random_formula_verdict_parity_across_backends(seed):
    """All backends agree with the DPLL(T) reference on random systems."""
    rng = random.Random(2000 + seed)
    variables = [IntVar(f"v{index}") for index in range(3)]

    def random_atom():
        expr = sum(
            (rng.randint(-3, 3) * variable for variable in variables),
            rng.randint(-4, 4) * variables[0],
        )
        return expr <= rng.randint(-5, 8)

    formulas = []
    for _ in range(rng.randint(2, 5)):
        if rng.random() < 0.5:
            formulas.append(random_atom())
        else:
            formulas.append(Or(random_atom(), random_atom()))

    reference = Solver()
    reference.add(*formulas)
    expected = reference.check().status

    for backend in ("scipy-ilp", "portfolio"):
        solver = create_solver(backend)
        solver.add(*formulas)
        assert solver.check().status == expected, f"seed={seed} backend={backend}"
