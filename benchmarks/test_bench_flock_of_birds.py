"""Table 1, sub-tables "Flock of birds [6]" and "Flock of birds [8]".

The paper sweeps the threshold parameter c (20..55 for the [6] variant,
50..350 for the [8] "threshold-n" variant) and reports |Q|, |T| and the time
to prove WS³ membership.  The |Q| / |T| columns are checked exactly
(``|Q| = c + 1``; ``|T| = c(c+1)/2`` resp. ``2c - 1``); the default sweep
uses smaller values of c than the paper (pure-Python solver vs. Z3), and the
paper's smallest parameter values are included behind ``REPRO_BENCH_LARGE=1``.
"""

from __future__ import annotations

import pytest

from repro.protocols.library import (
    flock_of_birds_protocol,
    flock_of_birds_threshold_n_protocol,
)
from repro.verification.ws3 import verify_ws3

from .conftest import requires_large, run_once

SMALL_ACCUMULATION = [4, 5, 6]
LARGE_ACCUMULATION = [8, 10, 20]
# c=10 takes minutes even with the incremental solver; it stays in the suite
# but only runs when the slow marker is selected.
SMALL_TOWER = [5, 8, pytest.param(10, marks=pytest.mark.slow)]
LARGE_TOWER = [25, 50]


@pytest.mark.parametrize("c", SMALL_ACCUMULATION)
def test_flock_of_birds_ws3(benchmark, c):
    protocol = flock_of_birds_protocol(c)
    assert protocol.num_states == c + 1
    assert protocol.num_transitions == c * (c + 1) // 2
    result = run_once(benchmark, verify_ws3, protocol)
    assert result.is_ws3


@requires_large()
@pytest.mark.parametrize("c", LARGE_ACCUMULATION)
def test_flock_of_birds_ws3_paper_sizes(benchmark, c):
    protocol = flock_of_birds_protocol(c)
    assert protocol.num_transitions == c * (c + 1) // 2
    result = run_once(benchmark, verify_ws3, protocol)
    assert result.is_ws3


@pytest.mark.parametrize("c", SMALL_TOWER)
def test_flock_of_birds_threshold_n_ws3(benchmark, c):
    protocol = flock_of_birds_threshold_n_protocol(c)
    assert protocol.num_states == c + 1
    assert protocol.num_transitions == 2 * c - 1
    result = run_once(benchmark, verify_ws3, protocol)
    assert result.is_ws3


@requires_large()
@pytest.mark.parametrize("c", LARGE_TOWER)
def test_flock_of_birds_threshold_n_ws3_paper_sizes(benchmark, c):
    protocol = flock_of_birds_threshold_n_protocol(c)
    assert protocol.num_transitions == 2 * c - 1
    result = run_once(benchmark, verify_ws3, protocol)
    assert result.is_ws3
