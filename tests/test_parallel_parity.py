"""Parallel vs. serial parity: jobs=4 must agree with jobs=1 everywhere.

The engine's wave plan is deterministic (fixed wave boundaries, refinements
merged in pair order, counterexamples re-derived serially), so these tests
are stable: a parallel run gives the same verdicts, the same
counterexamples and — for every family below except threshold-n, where
concurrently-seeded siblings legitimately discover a couple of extra
trap/siphon facts — the same refinement counts as the serial run.
"""

from __future__ import annotations

import pytest

from repro.engine import VerificationEngine
from repro.protocols.library import (
    broadcast_protocol,
    coin_flip_protocol,
    exclusive_majority_protocol,
    flock_of_birds_protocol,
    flock_of_birds_threshold_n_protocol,
    majority_protocol,
    oscillating_majority_protocol,
    remainder_protocol,
)
from repro.verification.correctness import check_correctness
from repro.verification.layered_termination import check_layered_termination
from repro.verification.strong_consensus import check_strong_consensus
from repro.verification.ws3 import verify_ws3

JOBS = 4

EXACT_PARITY_FAMILIES = [
    ("majority", majority_protocol),
    ("broadcast", broadcast_protocol),
    ("flock-of-birds-4", lambda: flock_of_birds_protocol(4)),
    ("remainder-3", lambda: remainder_protocol([1], 3, 1)),
    ("coin-flip", coin_flip_protocol),
    ("oscillating-majority", oscillating_majority_protocol),
    ("exclusive-majority", exclusive_majority_protocol),
]


def _counterexamples_equal(first, second) -> bool:
    if (first is None) != (second is None):
        return False
    if first is None:
        return True
    return (
        first.initial == second.initial
        and first.terminal_true == second.terminal_true
        and first.terminal_false == second.terminal_false
        and first.flow_true == second.flow_true
        and first.flow_false == second.flow_false
    )


class TestWS3Parity:
    @pytest.mark.parametrize(
        "name,factory", EXACT_PARITY_FAMILIES, ids=[name for name, _ in EXACT_PARITY_FAMILIES]
    )
    def test_identical_verdicts_counterexamples_and_refinements(self, name, factory):
        protocol = factory()
        serial = verify_ws3(protocol, check_consensus_first=True)
        parallel = verify_ws3(protocol, check_consensus_first=True, jobs=JOBS)

        assert parallel.is_ws3 == serial.is_ws3
        assert parallel.layered_termination.holds == serial.layered_termination.holds
        if serial.layered_termination.certificate is not None:
            assert (
                parallel.layered_termination.certificate.partition
                == serial.layered_termination.certificate.partition
            )
            assert (
                parallel.layered_termination.certificate.strategy
                == serial.layered_termination.certificate.strategy
            )
        serial_sc, parallel_sc = serial.strong_consensus, parallel.strong_consensus
        assert (parallel_sc is None) == (serial_sc is None)
        if serial_sc is not None:
            assert parallel_sc.holds == serial_sc.holds
            assert _counterexamples_equal(parallel_sc.counterexample, serial_sc.counterexample)
            assert len(parallel_sc.refinements) == len(serial_sc.refinements)
            assert {(s.kind, s.states) for s in parallel_sc.refinements} == {
                (s.kind, s.states) for s in serial_sc.refinements
            }

    def test_threshold_n_refinements_contain_the_serial_ones(self):
        # Wave siblings of the threshold-n family discover a few extra (still
        # valid) trap/siphon facts; the serial set must always be contained
        # and the parallel run must be reproducible.
        # The containment property is empirical for the smtlite trajectory,
        # so the backend is pinned (the CI backend matrix must not shift it).
        protocol = flock_of_birds_threshold_n_protocol(5)
        serial = check_strong_consensus(protocol, backend="smtlite")
        parallel = check_strong_consensus(protocol, jobs=JOBS, backend="smtlite")
        repeat = check_strong_consensus(protocol, jobs=JOBS, backend="smtlite")
        assert parallel.holds == serial.holds
        serial_set = {(s.kind, s.states) for s in serial.refinements}
        parallel_set = {(s.kind, s.states) for s in parallel.refinements}
        assert serial_set <= parallel_set
        assert {(s.kind, s.states) for s in repeat.refinements} == parallel_set
        assert len(repeat.refinements) == len(parallel.refinements)


class TestLayeredTerminationParity:
    @pytest.mark.parametrize(
        "name,factory", EXACT_PARITY_FAMILIES, ids=[name for name, _ in EXACT_PARITY_FAMILIES]
    )
    def test_portfolio_matches_serial_auto(self, name, factory):
        protocol = factory()
        serial = check_layered_termination(protocol)
        parallel = check_layered_termination(protocol, jobs=JOBS)
        assert parallel.holds == serial.holds
        if serial.certificate is not None:
            assert parallel.certificate.partition == serial.certificate.partition
            assert parallel.certificate.strategy == serial.certificate.strategy
        else:
            assert parallel.reason == serial.reason


class TestCorrectnessParity:
    def test_majority_predicate_parity(self):
        protocol = majority_protocol()
        predicate = protocol.metadata["predicate"]
        serial = check_correctness(protocol, predicate)
        parallel = check_correctness(protocol, predicate, jobs=JOBS)
        assert parallel.holds == serial.holds
        assert len(parallel.refinements) == len(serial.refinements)

    def test_wrong_predicate_counterexample_parity(self):
        protocol = majority_protocol()
        predicate = ~protocol.metadata["predicate"]
        serial = check_correctness(protocol, predicate)
        parallel = check_correctness(protocol, predicate, jobs=JOBS)
        assert not serial.holds and not parallel.holds
        assert serial.counterexample is not None and parallel.counterexample is not None
        assert parallel.counterexample.input_population == serial.counterexample.input_population
        assert parallel.counterexample.terminal == serial.counterexample.terminal
        assert parallel.counterexample.expected_output == serial.counterexample.expected_output


class TestSharedEngine:
    def test_one_engine_across_many_checks(self):
        """A caller-owned engine is reused (its pool survives across calls)."""
        with VerificationEngine(jobs=2) as engine:
            first = verify_ws3(majority_protocol(), engine=engine)
            second = verify_ws3(broadcast_protocol(), engine=engine)
        assert first.is_ws3 and second.is_ws3
        assert first.statistics["jobs"] == 2
