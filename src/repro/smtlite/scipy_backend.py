"""Theory backend based on scipy's HiGHS solvers.

This backend decides conjunctions of linear integer constraints with
``scipy.optimize.milp`` (branch-and-cut in HiGHS) and extracts conflict cores
from the dual multipliers of an *elastic* LP relaxation.  It is considerably
faster than the pure-Python exact backend on the larger constraint systems
produced by the threshold/remainder/flock-of-birds benchmarks.

Soundness: HiGHS works in floating point, so

* every model is rounded to integers and re-verified exactly
  (:func:`repro.smtlite.theory.verify_model`); if verification fails the
  query is re-run on the exact backend;
* every conflict core is re-verified by a dedicated infeasibility check
  before being returned; if the check fails the full constraint set is
  returned as the (always valid) core.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import optimize, sparse

from repro.smtlite.theory import (
    Bounds,
    ExactTheorySolver,
    TheoryConstraint,
    TheoryResult,
    TheorySolverBase,
    verify_model,
)

_MARGINAL_TOLERANCE = 1e-7
_FEASIBILITY_TOLERANCE = 1e-6


class ScipyTheorySolver(TheorySolverBase):
    """Linear integer arithmetic backend using scipy/HiGHS."""

    name = "scipy"

    def __init__(self, minimize_cores: bool = True, core_minimization_budget: int = 16):
        self.minimize_cores = minimize_cores
        self.core_minimization_budget = core_minimization_budget
        self._exact_fallback = ExactTheorySolver()
        self.statistics = {"milp_calls": 0, "lp_calls": 0, "exact_fallbacks": 0}

    # ------------------------------------------------------------------

    def is_satisfiable(self, constraints: Sequence[TheoryConstraint], bounds: Bounds) -> bool:
        """Single MILP feasibility call (no model verification, no core work)."""
        constraints = list(constraints)
        variables = sorted(
            {name for constraint in constraints for name in constraint.variables()} | set(bounds)
        )
        if not constraints:
            return True
        if not variables:
            return all(constraint.constant <= 0 for constraint in constraints)
        index_of = {name: position for position, name in enumerate(variables)}
        matrix, rhs = self._constraint_matrix(constraints, index_of)
        lower, upper = self._bound_arrays(variables, bounds)
        feasible, _ = self._solve_milp(matrix, rhs, lower, upper)
        return feasible

    def check(self, constraints: Sequence[TheoryConstraint], bounds: Bounds) -> TheoryResult:
        constraints = list(constraints)
        variables = sorted(
            {name for constraint in constraints for name in constraint.variables()} | set(bounds)
        )
        if not constraints:
            model = {name: self._default_value(bounds.get(name, (0, None))) for name in variables}
            return TheoryResult(True, model=model)
        if not variables:
            # Constant constraints only.
            if all(constraint.constant <= 0 for constraint in constraints):
                return TheoryResult(True, model={})
            core = [i for i, c in enumerate(constraints) if c.constant > 0]
            return TheoryResult(False, core=core)

        index_of = {name: position for position, name in enumerate(variables)}
        matrix, rhs = self._constraint_matrix(constraints, index_of)
        lower, upper = self._bound_arrays(variables, bounds)

        feasible, values = self._solve_milp(matrix, rhs, lower, upper)
        if feasible:
            model = {name: values[index_of[name]] for name in variables}
            if verify_model(constraints, bounds, model):
                return TheoryResult(True, model=model)
            self.statistics["exact_fallbacks"] += 1
            return self._exact_fallback.check(constraints, bounds)

        core = self._extract_core(constraints, bounds, matrix, rhs, lower, upper)
        return TheoryResult(False, core=core)

    # ------------------------------------------------------------------
    # MILP / LP building blocks
    # ------------------------------------------------------------------

    @staticmethod
    def _default_value(bound: tuple[int | None, int | None]) -> int:
        lower, upper = bound
        if lower is not None:
            return int(lower)
        if upper is not None:
            return int(upper)
        return 0

    @staticmethod
    def _constraint_matrix(
        constraints: Sequence[TheoryConstraint], index_of: dict[str, int]
    ) -> tuple[sparse.csr_matrix, np.ndarray]:
        data, row_indices, column_indices = [], [], []
        rhs = np.zeros(len(constraints))
        for row, constraint in enumerate(constraints):
            rhs[row] = -constraint.constant
            for name, coefficient in constraint.coefficients:
                data.append(float(coefficient))
                row_indices.append(row)
                column_indices.append(index_of[name])
        matrix = sparse.csr_matrix(
            (data, (row_indices, column_indices)), shape=(len(constraints), len(index_of))
        )
        return matrix, rhs

    @staticmethod
    def _bound_arrays(
        variables: list[str], bounds: Bounds
    ) -> tuple[np.ndarray, np.ndarray]:
        lower = np.zeros(len(variables))
        upper = np.full(len(variables), np.inf)
        for position, name in enumerate(variables):
            low, high = bounds.get(name, (0, None))
            lower[position] = -np.inf if low is None else float(low)
            upper[position] = np.inf if high is None else float(high)
        return lower, upper

    def _solve_milp(
        self,
        matrix: sparse.csr_matrix,
        rhs: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> tuple[bool, list[int] | None]:
        self.statistics["milp_calls"] += 1
        num_variables = matrix.shape[1]
        constraint = optimize.LinearConstraint(matrix, -np.inf, rhs)
        result = optimize.milp(
            c=np.zeros(num_variables),
            constraints=[constraint],
            integrality=np.ones(num_variables),
            bounds=optimize.Bounds(lower, upper),
        )
        if result.success and result.x is not None:
            return True, [int(round(value)) for value in result.x]
        return False, None

    # ------------------------------------------------------------------
    # Conflict cores
    # ------------------------------------------------------------------

    def _extract_core(
        self,
        constraints: Sequence[TheoryConstraint],
        bounds: Bounds,
        matrix: sparse.csr_matrix,
        rhs: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> list[int]:
        all_indices = list(range(len(constraints)))
        candidate = self._elastic_lp_core(matrix, rhs, lower, upper)
        core = None
        if candidate and len(candidate) < len(constraints):
            # Re-verify the candidate with a dedicated MILP call on the subset.
            subset = [constraints[index] for index in candidate]
            sub_variables = sorted({v for c in subset for v in c.variables()} | set(bounds))
            sub_index_of = {name: position for position, name in enumerate(sub_variables)}
            sub_matrix, sub_rhs = self._constraint_matrix(subset, sub_index_of)
            sub_lower, sub_upper = self._bound_arrays(sub_variables, bounds)
            feasible, _ = self._solve_milp(sub_matrix, sub_rhs, sub_lower, sub_upper)
            if not feasible:
                core = candidate
        if core is None:
            core = all_indices
        if self.minimize_cores and 4 < len(core) <= self.core_minimization_budget:
            core = self.minimize_core(constraints, bounds, core, max_checks=self.core_minimization_budget)
        return core

    def _elastic_lp_core(
        self,
        matrix: sparse.csr_matrix,
        rhs: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> list[int] | None:
        """Dual-based core from the elastic LP ``min sum(s) s.t. Ax - s <= b``.

        If the minimal total violation is positive, the LP relaxation itself
        is infeasible and the rows with non-zero dual multipliers form a
        Farkas-style certificate.
        """
        self.statistics["lp_calls"] += 1
        num_constraints, num_variables = matrix.shape
        elastic = sparse.hstack([matrix, -sparse.identity(num_constraints, format="csr")], format="csr")
        objective = np.concatenate([np.zeros(num_variables), np.ones(num_constraints)])
        variable_bounds = [
            (None if np.isneginf(low) else low, None if np.isposinf(high) else high)
            for low, high in zip(lower, upper)
        ] + [(0, None)] * num_constraints
        result = optimize.linprog(
            objective,
            A_ub=elastic,
            b_ub=rhs,
            bounds=variable_bounds,
            method="highs",
        )
        if not result.success:
            return None
        if result.fun <= _FEASIBILITY_TOLERANCE:
            # LP relaxation is feasible: infeasibility is integrality-driven,
            # no cheap certificate available.
            return None
        marginals = getattr(result.ineqlin, "marginals", None)
        if marginals is None:
            return None
        return [index for index, value in enumerate(marginals) if abs(value) > _MARGINAL_TOLERANCE]
