"""Retry policy, backend degradation, and partial verdicts under injected faults."""

from __future__ import annotations

import json

import pytest

from repro.api.options import VerificationOptions
from repro.api.report import Verdict
from repro.api.verifier import Verifier
from repro.constraints.backends import (
    FALLBACK_CHAIN,
    ResilientSolver,
    demoted_backends,
    effective_backend,
    health_statistics,
    reset_backend_health,
)
from repro.engine import DEFAULT_RETRY, NO_RETRY, RetryPolicy
from repro.protocols.library import broadcast_protocol, majority_protocol
from repro.service import VerificationService
from repro.smtlite.solver import SolverStatus
from repro.testing import ENV_VAR, FaultInjected, clear_plan, install_plan


@pytest.fixture(autouse=True)
def _clean_fault_state():
    yield
    clear_plan()
    reset_backend_health()


class TestRetryPolicy:
    def test_defaults(self):
        assert DEFAULT_RETRY.max_retries == 2
        assert DEFAULT_RETRY.enabled
        assert not NO_RETRY.enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(subproblem_timeout=0)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_factor=2.0, max_backoff_seconds=0.3)
        assert policy.backoff_delay(1) == pytest.approx(0.1)
        assert policy.backoff_delay(2) == pytest.approx(0.2)
        assert policy.backoff_delay(3) == pytest.approx(0.3)  # capped
        assert policy.backoff_delay(0) == 0.0

    def test_round_trip_and_replace(self):
        policy = DEFAULT_RETRY.replace(max_retries=5, subproblem_timeout=9.0)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(ValueError, match="unknown"):
            RetryPolicy.from_dict({"max_tries": 1})

    def test_options_coerce_dict_and_exclude_retry_from_cache_key(self):
        options = VerificationOptions(retry={"max_retries": 7})
        assert isinstance(options.retry, RetryPolicy)
        assert options.retry.max_retries == 7
        assert "retry" not in options.cache_snapshot()
        # Execution knobs must not partition the result cache: two runs
        # differing only in retry policy share verdicts.
        assert (
            VerificationOptions(retry=NO_RETRY).cache_snapshot() == options.cache_snapshot()
        )

    def test_options_round_trip_preserves_retry(self):
        options = VerificationOptions(retry={"max_retries": 4})
        rebuilt = VerificationOptions.from_dict(options.to_dict())
        assert rebuilt.retry == options.retry


class TestBackendDegradation:
    def test_crashed_check_falls_back_along_the_chain(self):
        install_plan({"faults": [{"site": "backend.check", "action": "raise", "at": 1}]})
        solver = ResilientSolver(backend="smtlite")
        x = solver.int_var("x", lower=0, upper=5)
        solver.add(x >= 3)
        result = solver.check()
        assert result.status is SolverStatus.SAT
        assert solver.backend_name == FALLBACK_CHAIN["smtlite"]
        assert "smtlite" in demoted_backends()
        stats = health_statistics()
        assert stats["demotions"] == 1
        assert stats["failed_checks"] == 1
        assert stats["replays"] == 1

    def test_replay_preserves_the_constraint_store(self):
        install_plan({"faults": [{"site": "backend.check", "action": "raise", "at": 2}]})
        solver = ResilientSolver(backend="smtlite")
        x = solver.int_var("x", lower=0, upper=10)
        solver.add(x >= 4)
        assert solver.check().status is SolverStatus.SAT  # occurrence 1: fine
        solver.add(x <= 3)
        # Occurrence 2 crashes smtlite; the replayed store on the fallback
        # must still contain both constraints and answer UNSAT.
        assert solver.check().status is SolverStatus.UNSAT

    def test_exhausted_chain_re_raises(self):
        install_plan({"faults": [{"site": "backend.check", "action": "raise"}]})
        solver = ResilientSolver(backend="smtlite")
        x = solver.int_var("x")
        solver.add(x >= 0)
        with pytest.raises(FaultInjected):
            solver.check()
        demoted = demoted_backends()
        assert "smtlite" in demoted and "scipy-ilp" in demoted

    def test_demotion_is_session_wide(self):
        install_plan({"faults": [{"site": "backend.check", "action": "raise", "at": 1}]})
        crashed = ResilientSolver(backend="smtlite")
        x = crashed.int_var("x")
        crashed.add(x >= 0)
        crashed.check()
        # A *new* solver for the same backend starts on the fallback.
        assert effective_backend("smtlite") == FALLBACK_CHAIN["smtlite"]
        assert ResilientSolver(backend="smtlite").backend_name == FALLBACK_CHAIN["smtlite"]
        reset_backend_health()
        assert ResilientSolver(backend="smtlite").backend_name == "smtlite"

    def test_degradation_does_not_change_the_verdict(self):
        install_plan({"faults": [{"site": "backend.check", "action": "raise", "at": 1}]})
        with Verifier() as verifier:
            degraded = verifier.check(majority_protocol(), properties=["ws3"])
        reset_backend_health()
        clear_plan()
        with Verifier() as verifier:
            clean = verifier.check(majority_protocol(), properties=["ws3"])
        assert degraded.is_ws3 == clean.is_ws3
        for name in ("ws3",):
            assert degraded.result_for(name).verdict == clean.result_for(name).verdict


class TestEngineRetry:
    def test_killed_worker_is_retried(self, tmp_path, monkeypatch):
        plan = {
            "seed": 3,
            "state_dir": str(tmp_path / "fault-state"),
            "faults": [{"site": "worker.solve", "action": "kill", "at": 1}],
        }
        monkeypatch.setenv(ENV_VAR, json.dumps(plan))
        clear_plan()  # make the workers (and this process) read the env plan
        protocols = [majority_protocol(), broadcast_protocol()]
        with Verifier(jobs=2) as verifier:
            batch = verifier.check_many(protocols, properties=["ws3"])
            engine = verifier.engine
            assert engine.statistics["worker_deaths"] >= 1
            assert engine.statistics["retries"] >= 1
        assert [item.is_ws3 for item in batch] == [True, True]

    def test_without_retry_the_death_is_fatal(self, tmp_path, monkeypatch):
        plan = {
            "state_dir": str(tmp_path / "fault-state"),
            "faults": [{"site": "worker.solve", "action": "kill", "times": 10}],
        }
        monkeypatch.setenv(ENV_VAR, json.dumps(plan))
        clear_plan()
        protocols = [majority_protocol(), broadcast_protocol()]
        with pytest.raises(Exception, match="worker process died"):
            with Verifier(jobs=2, retry=NO_RETRY) as verifier:
                verifier.check_many(protocols, properties=["ws3"])

    def test_retry_emits_subproblem_retried_events(self, tmp_path, monkeypatch):
        plan = {
            "state_dir": str(tmp_path / "fault-state"),
            "faults": [{"site": "worker.solve", "action": "kill", "at": 1}],
        }
        monkeypatch.setenv(ENV_VAR, json.dumps(plan))
        clear_plan()
        with VerificationService(jobs=2) as service:
            handle = service.submit_batch(
                [majority_protocol(), broadcast_protocol()], ["ws3"]
            )
            assert handle.wait(timeout=300)
            assert handle.result().all_ok
            retried = [e for e in handle.events_so_far() if e.TYPE == "subproblem_retried"]
            assert retried, "expected at least one subproblem_retried event"
            assert retried[0].attempt >= 2
            assert "worker" in retried[0].reason or "died" in retried[0].reason


class TestPartialVerdicts:
    def test_exhausted_job_budget_reports_partial(self):
        policy = DEFAULT_RETRY.replace(job_timeout=1e-6)
        with VerificationService(retry=policy) as service:
            handle = service.submit(
                majority_protocol(), ["ws3", "strong_consensus", "layered_termination"]
            )
            assert handle.wait(timeout=300)
            report = handle.result()
        assert handle.status().value == "done"
        assert report.partial
        assert all(prop.verdict is Verdict.PARTIAL for prop in report.properties)
        assert report.statistics.get("partial") is True
        # PARTIAL is indecision, not failure: the report is still "ok".
        assert report.ok

    def test_partial_reports_are_never_cached(self, tmp_path):
        cache_dir = tmp_path / "cache"
        policy = DEFAULT_RETRY.replace(job_timeout=1e-6)
        with VerificationService(retry=policy, cache_dir=str(cache_dir)) as service:
            handle = service.submit(majority_protocol(), ["ws3"])
            assert handle.wait(timeout=300)
            assert handle.result().partial
        assert not list(cache_dir.glob("*.json")), "a partial report leaked into the cache"
        with VerificationService(cache_dir=str(cache_dir)) as service:
            handle = service.submit(majority_protocol(), ["ws3"])
            assert handle.wait(timeout=300)
            assert not handle.result().partial
        assert list(cache_dir.glob("*.json")), "the complete report should be cached"

    def test_partial_round_trips_through_serialization(self):
        from repro.api.report import PropertyResult, VerificationReport

        result = PropertyResult(
            property="ws3", verdict=Verdict.PARTIAL, reason="budget exhausted"
        )
        report = VerificationReport(
            protocol_name="p", protocol_hash="h", properties=[result], options={}, statistics={}
        )
        rebuilt = VerificationReport.from_dict(report.to_dict())
        assert rebuilt.partial
        assert rebuilt.result_for("ws3").verdict is Verdict.PARTIAL
        assert "PARTIAL" in "\n".join(rebuilt.result_for("ws3").describe())
