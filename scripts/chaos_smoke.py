#!/usr/bin/env python3
"""CI chaos test: the verification service survives crashes and fault injection.

Five scenarios, each end to end against real subprocesses:

1. **Fault-free baseline** — a journalled ``repro-verify serve`` daemon runs
   a batch to completion; its lossless batch payload is the reference.
2. **SIGKILL + recovery** — a second journalled daemon is killed with
   ``SIGKILL`` right after the batch submission is acknowledged (so the job
   is journalled but almost certainly unfinished); a third daemon restarted
   on the same journal must resume the job and produce a final payload that
   is byte-identical to the baseline after stripping volatile fields
   (timings, event trails).
3. **Poisoned worker** — a parallel batch runs under a deterministic
   ``REPRO_FAULT_PLAN`` that SIGKILLs the first worker process touching a
   subproblem; the engine's retry policy must absorb the death and the run
   must still exit 0 with the right verdicts.
4. **Chaos over TCP** — a journalled ``serve --tcp`` daemon runs under a
   wire-fault plan (truncated and dropped response frames); concurrent
   retrying clients submit the same specs over TCP, the daemon is
   SIGTERMed mid-batch (drain), and a clean restart on the same journal
   must finish every acknowledged job with reports matching the baseline
   after normalization.  At-least-once submits may create duplicate jobs;
   every duplicate must still be completed-and-correct.
5. **Replica SIGKILL behind the router** — a 2-shard routing tier
   (:mod:`repro.service.router`) accepts a batch of submits, then the
   replica owning most of them is SIGKILLed mid-batch.  The supervisor
   must restart it with backoff, journal recovery must re-attach its
   acknowledged jobs, and every job must finish with a report identical
   to the fault-free baseline after normalization — the router's lossless
   failover contract.

Exits non-zero with a diagnostic on any violation::

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

SPECS = ["majority", "broadcast", "flock-of-birds:4"]

#: Fields whose values legitimately differ between two runs of the same job.
#: ``cache_dir`` and ``from_cache`` are deployment details (router replicas
#: get per-shard result caches; the baseline daemon runs uncached) — cache
#: placement and warmth are not part of the verification result.
VOLATILE_KEYS = {"time", "timestamp", "events", "seq", "cache_dir", "from_cache"}


def _volatile(key: str) -> bool:
    return key in VOLATILE_KEYS or key.endswith("_time") or key.endswith("_seconds")


def normalize(value):
    """Strip volatile fields (timings, event trails) recursively.

    Everything that remains — verdicts, certificates, counterexamples,
    refinement counts, protocol hashes — must be bit-for-bit reproducible
    between a fault-free run and a crash-recovered one.
    """
    if isinstance(value, dict):
        return {key: normalize(item) for key, item in value.items() if not _volatile(key)}
    if isinstance(value, list):
        return [normalize(item) for item in value]
    return value


def canonical(value) -> str:
    return json.dumps(normalize(value), sort_keys=True, separators=(",", ":"))


def serve_env() -> dict:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env.pop("REPRO_FAULT_PLAN", None)
    return env


def serve_command(journal_dir: str) -> list:
    return [sys.executable, "-m", "repro.cli", "serve", "--journal-dir", journal_dir]


def run_requests(journal_dir: str, requests: list, timeout: float = 600) -> dict:
    """One full serve session; returns the responses keyed by request id."""
    script = "\n".join(json.dumps(request) for request in requests) + "\n"
    proc = subprocess.run(
        serve_command(journal_dir),
        input=script,
        capture_output=True,
        text=True,
        env=serve_env(),
        timeout=timeout,
    )
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        raise RuntimeError(f"serve exited with {proc.returncode}")
    responses = {}
    for line in proc.stdout.splitlines():
        payload = json.loads(line)
        if payload.get("type") == "response" and "id" in payload:
            responses[payload["id"]] = payload
    return responses


def scenario_baseline(journal_dir: str) -> tuple[str, dict]:
    """Returns the canonical batch payload plus per-protocol canonical reports."""
    responses = run_requests(
        journal_dir,
        [
            {"op": "submit", "specs": SPECS, "id": 1},
            {"op": "result", "job": "job-1", "wait": True, "id": 2},
            {"op": "shutdown", "id": 3},
        ],
    )
    result = responses.get(2, {})
    if not result.get("ok") or "batch" not in result:
        raise RuntimeError(f"baseline batch did not complete: {result}")
    per_protocol = {
        item["protocol"]: canonical(item["report"]) for item in result["batch"]["items"]
    }
    return canonical(result["batch"]), per_protocol


def scenario_crash_recovery(journal_dir: str, reference: str) -> list:
    """Kill a daemon right after submission; a restart must finish the job."""
    failures = []
    proc = subprocess.Popen(
        serve_command(journal_dir),
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=serve_env(),
    )
    try:
        proc.stdin.write(json.dumps({"op": "submit", "specs": SPECS, "id": 1}) + "\n")
        proc.stdin.flush()
        # The submit response is written only after the journal append is
        # fsynced, so once we read it the job is durable — kill away.
        acknowledged = json.loads(proc.stdout.readline())
        if not acknowledged.get("ok"):
            failures.append(f"crash-scenario submit failed: {acknowledged}")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
    if proc.returncode == 0:
        failures.append("the SIGKILLed daemon exited 0; the kill did not land")

    responses = run_requests(
        journal_dir,
        [
            {"op": "result", "job": "job-1", "wait": True, "id": 1},
            {"op": "shutdown", "id": 2},
        ],
    )
    result = responses.get(1, {})
    if not result.get("ok") or "batch" not in result:
        failures.append(f"recovered daemon did not serve job-1: {result}")
        return failures
    recovered = canonical(result["batch"])
    if recovered != reference:
        failures.append(
            "recovered batch payload differs from the fault-free baseline "
            f"after normalization:\n  baseline:  {reference[:400]}\n  recovered: {recovered[:400]}"
        )
    return failures


def scenario_poisoned_worker(state_dir: str) -> list:
    """A worker SIGKILLed mid-subproblem must be absorbed by the retry policy."""
    failures = []
    plan = {
        "seed": 7,
        "state_dir": state_dir,
        "faults": [{"site": "worker.solve", "action": "kill", "at": 1}],
    }
    env = serve_env()
    env["REPRO_FAULT_PLAN"] = json.dumps(plan)
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "batch",
            "majority",
            "broadcast",
            "--jobs",
            "2",
            "--no-cache",
            "--json",
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        failures.append(f"poisoned-worker batch exited {proc.returncode}")
        return failures
    payload = json.loads(proc.stdout)
    items = {item["protocol"]: item for item in payload["protocols"]}
    if not items.get("majority", {}).get("is_ws3"):
        failures.append("majority unexpectedly not WS3 under fault injection")
    if not items.get("broadcast", {}).get("is_ws3"):
        failures.append("broadcast unexpectedly not WS3 under fault injection")
    # The fault plan's cross-process counter file proves the kill fired.
    fired = any(os.scandir(state_dir))
    if not fired:
        failures.append("the kill fault never fired (no occurrence counters written)")
    return failures


def tcp_daemon(journal_dir: str, fault_plan: dict | None = None) -> tuple:
    """Start ``serve --tcp 127.0.0.1:0 --journal-dir ...``; returns (proc, host, port)."""
    env = serve_env()
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = json.dumps(fault_plan)
    proc = subprocess.Popen(
        serve_command(journal_dir) + ["--tcp", "127.0.0.1:0", "--drain-timeout", "20"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        raise RuntimeError(f"TCP daemon died before announcing a port: {proc.stderr.read()}")
    announced = json.loads(line)
    return proc, announced["host"], announced["port"]


def scenario_tcp_chaos(journal_dir: str, per_protocol: dict) -> list:
    """Wire faults + SIGTERM mid-batch over TCP: nothing lost, nothing wrong.

    Every job a client got an acknowledgement for (at-least-once: retried
    submits may create duplicates) must, after a drain and a clean restart
    on the same journal, finish ``done`` with a report identical to the
    fault-free baseline after normalization.
    """
    from repro.service.client import VerificationClient

    failures: list = []
    plan = {
        "seed": 11,
        "faults": [
            {"site": "net.send", "action": "truncate", "at": 3, "match": {"kind": "response"}},
            {"site": "net.send", "action": "drop", "at": 7, "match": {"kind": "response"}},
        ],
    }
    proc, host, port = tcp_daemon(journal_dir, fault_plan=plan)
    acknowledged: list = []  # (spec, job_id)
    lock = threading.Lock()

    def submitter(index: int) -> None:
        try:
            with VerificationClient(host, port, timeout=10, seed=index) as client:
                for spec in SPECS:
                    job = client.submit(spec)
                    with lock:
                        acknowledged.append((spec, job))
        except Exception as error:  # noqa: BLE001 - recorded as a failure
            with lock:
                failures.append(f"TCP submitter {index}: {type(error).__name__}: {error}")

    try:
        threads = [threading.Thread(target=submitter, args=(index,)) for index in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
    finally:
        # SIGTERM lands while most of the backlog is still queued: the drain
        # must journal it and exit 0.
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=120)
    if code != 0:
        failures.append(f"TCP daemon exited {code} on SIGTERM (expected 0)")
    if not acknowledged:
        failures.append("no TCP submit was acknowledged under the fault plan")
        return failures

    # Clean restart on the same journal: every acknowledged job must finish
    # with the baseline report.
    proc2, host2, port2 = tcp_daemon(journal_dir)
    try:
        with VerificationClient(host2, port2, timeout=60) as client:
            for spec, job in acknowledged:
                status = client.wait(job, timeout=300)
                if status != "done":
                    failures.append(f"recovered job {job} ({spec}) ended {status!r}")
                    continue
                report = client.result(job).get("report")
                if report is None:
                    failures.append(f"recovered job {job} ({spec}) has no report")
                    continue
                protocol = report.get("protocol")
                reference = per_protocol.get(protocol)
                if reference is None:
                    failures.append(f"job {job}: no baseline report for protocol {protocol!r}")
                elif canonical(report) != reference:
                    failures.append(
                        f"job {job} ({spec}): recovered report differs from the "
                        "fault-free baseline after normalization"
                    )
    finally:
        proc2.send_signal(signal.SIGTERM)
        if proc2.wait(timeout=120) != 0:
            failures.append("restarted TCP daemon did not drain cleanly")
    return failures


def scenario_router_failover(state_dir: str, per_protocol: dict) -> list:
    """SIGKILL one replica of a 2-shard router mid-batch: nothing lost.

    The replicas are real ``serve --tcp`` subprocesses on per-shard
    journals; the router runs in-process so the scenario can pick its
    victim (the shard owning most of the acknowledged jobs) and observe
    the supervisor's restart counters directly.
    """
    from repro.service.client import VerificationClient
    from repro.service.replicas import ReplicaSupervisor
    from repro.service.router import JobRouter, RouterServer

    failures: list = []
    supervisor = ReplicaSupervisor(2, state_dir, workers=1, probe_interval=0.2)
    supervisor.start()
    router = JobRouter(supervisor)
    server = RouterServer(router)
    host, port = server.start()
    try:
        with VerificationClient(host, port, timeout=300) as client:
            acknowledged = [(spec, client.submit(spec)) for spec in SPECS * 2]
            by_shard: dict = {}
            for _, job in acknowledged:
                by_shard.setdefault(job.split(":", 1)[0], []).append(job)
            victim = max(by_shard, key=lambda shard: len(by_shard[shard]))
            pid = supervisor.kill(victim)
            if pid is None:
                failures.append(f"victim shard {victim} was not running")

            for spec, job in acknowledged:
                status = client.wait(job, timeout=300)
                if status != "done":
                    failures.append(f"failover job {job} ({spec}) ended {status!r}")
                    continue
                report = client.result(job).get("report")
                if report is None:
                    failures.append(f"failover job {job} ({spec}) has no report")
                    continue
                reference = per_protocol.get(report.get("protocol"))
                if reference is None:
                    failures.append(f"job {job}: no baseline for {report.get('protocol')!r}")
                elif canonical(report) != reference:
                    failures.append(
                        f"job {job} ({spec}): post-failover report differs from the "
                        "fault-free baseline after normalization"
                    )

            restarts = supervisor.fleet_status().get(victim, {}).get("restarts", 0)
            if restarts < 1:
                failures.append(f"the supervisor never restarted SIGKILLed shard {victim}")
    finally:
        if not server.drain():
            failures.append("router fleet did not drain gracefully")
    return failures


def main() -> int:
    start = time.perf_counter()
    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        baseline_dir = os.path.join(tmp, "journal-baseline")
        crash_dir = os.path.join(tmp, "journal-crash")
        tcp_dir = os.path.join(tmp, "journal-tcp")
        state_dir = os.path.join(tmp, "fault-state")
        os.makedirs(state_dir)

        try:
            reference, per_protocol = scenario_baseline(baseline_dir)
            print("chaos 1/5: fault-free journalled baseline OK")
        except Exception as error:
            print(f"FAIL: baseline scenario: {error}", file=sys.stderr)
            return 1

        crash_failures = scenario_crash_recovery(crash_dir, reference)
        failures.extend(crash_failures)
        if not crash_failures:
            print("chaos 2/5: SIGKILL + journal recovery OK (byte-identical payload)")

        poison_failures = scenario_poisoned_worker(state_dir)
        failures.extend(poison_failures)
        if not poison_failures:
            print("chaos 3/5: poisoned-worker retry OK")

        tcp_failures = scenario_tcp_chaos(tcp_dir, per_protocol)
        failures.extend(tcp_failures)
        if not tcp_failures:
            print("chaos 4/5: wire faults + SIGTERM drain + TCP recovery OK")

        router_failures = scenario_router_failover(os.path.join(tmp, "fleet"), per_protocol)
        failures.extend(router_failures)
        if not router_failures:
            print("chaos 5/5: router replica SIGKILL failover OK (lossless)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"chaos smoke OK in {time.perf_counter() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
