"""Linear integer terms.

A :class:`LinearExpr` is an immutable linear expression ``sum_i a_i * x_i + c``
with integer coefficients over named integer variables.  Comparisons between
expressions produce :class:`~repro.smtlite.formula.Atom` objects (or boolean
constants when both sides are constant), so constraint systems can be written
with ordinary Python operators::

    x, y = IntVar("x"), IntVar("y")
    constraint = (2 * x + y <= 7) & (x >= 1)
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from numbers import Integral


class LinearExpr:
    """An immutable linear expression with integer coefficients."""

    __slots__ = ("coefficients", "constant")

    def __init__(self, coefficients: Mapping[str, int] | None = None, constant: int = 0):
        coeffs: dict[str, int] = {}
        for name, value in (coefficients or {}).items():
            if not isinstance(value, Integral):
                raise TypeError(f"coefficient of {name!r} must be an integer, got {value!r}")
            value = int(value)
            if value != 0:
                coeffs[name] = value
        if not isinstance(constant, Integral):
            raise TypeError(f"constant must be an integer, got {constant!r}")
        self.coefficients: dict[str, int] = coeffs
        self.constant: int = int(constant)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def constant_expr(cls, value: int) -> "LinearExpr":
        return cls({}, value)

    @classmethod
    def variable(cls, name: str) -> "LinearExpr":
        return cls({name: 1}, 0)

    @classmethod
    def sum_of(cls, expressions: Iterable["LinearExpr | int"]) -> "LinearExpr":
        """Sum an iterable of expressions (and plain integers)."""
        total = cls.constant_expr(0)
        for expression in expressions:
            total = total + expression
        return total

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def variables(self) -> frozenset[str]:
        return frozenset(self.coefficients)

    def is_constant(self) -> bool:
        return not self.coefficients

    def coefficient(self, name: str) -> int:
        return self.coefficients.get(name, 0)

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Evaluate under a (total, for the variables used) integer assignment."""
        value = self.constant
        for name, coefficient in self.coefficients.items():
            if name not in assignment:
                raise KeyError(f"no value for variable {name!r}")
            value += coefficient * assignment[name]
        return value

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(value: "LinearExpr | int") -> "LinearExpr":
        if isinstance(value, LinearExpr):
            return value
        if isinstance(value, Integral):
            return LinearExpr({}, int(value))
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: "LinearExpr | int") -> "LinearExpr":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        coeffs = dict(self.coefficients)
        for name, value in other.coefficients.items():
            coeffs[name] = coeffs.get(name, 0) + value
        return LinearExpr(coeffs, self.constant + other.constant)

    def __radd__(self, other: "LinearExpr | int") -> "LinearExpr":
        return self.__add__(other)

    def __neg__(self) -> "LinearExpr":
        return LinearExpr({name: -value for name, value in self.coefficients.items()}, -self.constant)

    def __sub__(self, other: "LinearExpr | int") -> "LinearExpr":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: "LinearExpr | int") -> "LinearExpr":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other + (-self)

    def __mul__(self, factor: int) -> "LinearExpr":
        if not isinstance(factor, Integral):
            return NotImplemented
        factor = int(factor)
        return LinearExpr(
            {name: value * factor for name, value in self.coefficients.items()},
            self.constant * factor,
        )

    def __rmul__(self, factor: int) -> "LinearExpr":
        return self.__mul__(factor)

    # ------------------------------------------------------------------
    # Comparisons produce atoms (imported lazily to avoid a cycle)
    # ------------------------------------------------------------------

    def _atom(self, other: "LinearExpr | int", kind: str):
        from repro.smtlite import formula

        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return formula.compare(self, other, kind)

    def __le__(self, other):
        return self._atom(other, "<=")

    def __ge__(self, other):
        return self._atom(other, ">=")

    def __lt__(self, other):
        return self._atom(other, "<")

    def __gt__(self, other):
        return self._atom(other, ">")

    def eq(self, other):
        """Equality atom (named method because ``__eq__`` is structural equality)."""
        return self._atom(other, "==")

    def ne(self, other):
        """Disequality (expands to a disjunction of strict inequalities)."""
        return self._atom(other, "!=")

    # ------------------------------------------------------------------
    # Structural equality / hashing / printing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearExpr):
            return NotImplemented
        return self.coefficients == other.coefficients and self.constant == other.constant

    def __hash__(self) -> int:
        return hash((frozenset(self.coefficients.items()), self.constant))

    def __repr__(self) -> str:
        if not self.coefficients:
            return f"LinearExpr({self.constant})"
        terms = []
        for name in sorted(self.coefficients):
            coefficient = self.coefficients[name]
            if coefficient == 1:
                terms.append(f"{name}")
            elif coefficient == -1:
                terms.append(f"-{name}")
            else:
                terms.append(f"{coefficient}*{name}")
        rendered = " + ".join(terms).replace("+ -", "- ")
        if self.constant:
            rendered += f" + {self.constant}" if self.constant > 0 else f" - {-self.constant}"
        return f"LinearExpr({rendered})"


def IntVar(name: str) -> LinearExpr:
    """An integer variable as a linear expression.

    Variable *bounds* (lower/upper) are declared on the
    :class:`~repro.smtlite.solver.Solver`, not on the expression.
    """
    if not isinstance(name, str) or not name:
        raise TypeError("variable names must be non-empty strings")
    return LinearExpr.variable(name)


def linear_sum(pairs: Iterable[tuple[int, "LinearExpr | str"]], constant: int = 0) -> LinearExpr:
    """Build ``sum coefficient * term + constant`` efficiently.

    ``pairs`` may mix variable names and linear expressions.
    """
    coefficients: dict[str, int] = {}
    total_constant = constant
    for coefficient, term in pairs:
        if isinstance(term, str):
            coefficients[term] = coefficients.get(term, 0) + coefficient
            continue
        for name, value in term.coefficients.items():
            coefficients[name] = coefficients.get(name, 0) + coefficient * value
        total_constant += coefficient * term.constant
    return LinearExpr(coefficients, total_constant)
