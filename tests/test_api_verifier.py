"""Tests for the unified Verifier session API (options, registry, sessions)."""

from __future__ import annotations

import pytest

from repro.api import (
    PropertyChecker,
    PropertyResult,
    Verdict,
    VerificationOptions,
    VerificationReport,
    Verifier,
    available_properties,
    property_checker,
    register_property,
    unregister_property,
)
from repro.io.loading import ProtocolLoadError, resolve_protocol_spec
from repro.protocols.library import broadcast_protocol, coin_flip_protocol, majority_protocol


class TestVerificationOptions:
    def test_defaults_are_valid(self):
        options = VerificationOptions()
        assert options.strategy == "auto"
        assert options.jobs == 1

    @pytest.mark.parametrize(
        "overrides",
        [
            {"strategy": "nonsense"},
            {"theory": "z3"},
            {"consensus_strategy": "bogus"},
            {"jobs": 0},
            {"max_layers": 0},
            {"max_refinements": 0},
            {"explicit_max_size": 1},
        ],
    )
    def test_invalid_options_rejected(self, overrides):
        with pytest.raises(ValueError):
            VerificationOptions(**overrides)

    def test_dict_round_trip(self):
        options = VerificationOptions(strategy="scc", theory="exact", jobs=3, max_layers=4)
        assert VerificationOptions.from_dict(options.to_dict()) == options

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown verification options"):
            VerificationOptions.from_dict({"strategy": "auto", "typo": 1})

    def test_cache_snapshot_excludes_execution_knobs(self):
        snapshot = VerificationOptions(jobs=7, cache_dir="/tmp/x").cache_snapshot()
        assert "jobs" not in snapshot and "cache_dir" not in snapshot
        assert snapshot["strategy"] == "auto"

    def test_replace_revalidates(self):
        options = VerificationOptions()
        assert options.replace(jobs=2).jobs == 2
        with pytest.raises(ValueError):
            options.replace(jobs=-1)


class TestRegistry:
    def test_builtin_properties_registered(self):
        assert {"ws3", "layered_termination", "strong_consensus", "correctness", "explicit"} <= set(
            available_properties()
        )

    def test_unknown_property_fails_fast(self):
        with pytest.raises(ValueError, match="unknown property"):
            Verifier().check(broadcast_protocol(), properties=["definitely-not-registered"])

    def test_duplicate_registration_rejected(self):
        checker = property_checker("ws3")
        with pytest.raises(ValueError, match="already registered"):
            register_property(checker)

    def test_custom_property_plugs_in(self):
        class AlwaysHolds(PropertyChecker):
            name = "always-holds"

            def check(self, protocol, options, *, engine=None, predicate=None):
                return PropertyResult(
                    property=self.name,
                    verdict=Verdict.HOLDS,
                    details={"states": protocol.num_states},
                )

        register_property(AlwaysHolds())
        try:
            report = Verifier().check(broadcast_protocol(), properties=["always-holds"])
            assert report.ok
            assert report.result_for("always-holds").details["states"] == 2
            clone = VerificationReport.from_json(report.to_json())
            assert clone == report
        finally:
            unregister_property("always-holds")
        assert "always-holds" not in available_properties()


class TestVerifierSessions:
    def test_single_property_string_accepted(self):
        report = Verifier().check(broadcast_protocol(), properties="layered_termination")
        assert [p.property for p in report.properties] == ["layered_termination"]

    def test_empty_property_list_rejected(self):
        with pytest.raises(ValueError):
            Verifier().check(broadcast_protocol(), properties=[])

    def test_engine_and_jobs_mutually_exclusive(self):
        from repro.engine import VerificationEngine

        engine = VerificationEngine(jobs=1)
        with pytest.raises(ValueError):
            Verifier(jobs=2, engine=engine)

    def test_closed_session_rejects_checks(self):
        verifier = Verifier()
        verifier.close()
        with pytest.raises(RuntimeError, match="closed"):
            verifier.check(broadcast_protocol())

    def test_session_reuses_one_engine_across_checks(self):
        with Verifier(jobs=2) as verifier:
            verifier.check(broadcast_protocol())
            first = verifier.engine
            verifier.check(majority_protocol())
            assert verifier.engine is first
            assert first.jobs == 2
        # closed on exit: a fresh parallel call would need a new session
        assert verifier._owns_engine is False

    def test_report_statistics_record_properties_and_jobs(self):
        report = Verifier().check(broadcast_protocol())
        assert report.statistics["properties"] == ["ws3"]
        assert report.statistics["jobs"] == 1
        assert report.options["strategy"] == "auto"

    def test_check_many_dedupes_and_caches(self, tmp_path):
        with Verifier(cache_dir=str(tmp_path)) as verifier:
            batch = verifier.check_many(
                [broadcast_protocol(), broadcast_protocol(), coin_flip_protocol()]
            )
        assert batch.statistics["verified"] == 2
        assert batch.statistics["duplicates"] == 1
        assert [item.is_ws3 for item in batch] == [True, True, False]
        assert not batch.all_ws3 and not batch.all_ok
        with Verifier(cache_dir=str(tmp_path)) as verifier:
            warm = verifier.check_many([broadcast_protocol(), coin_flip_protocol()])
        assert all(item.from_cache for item in warm)

    def test_check_many_does_not_dedup_across_predicates(self):
        # Structurally identical protocols (same content hash) with
        # different documented predicates must be verified separately when
        # correctness is requested.
        right = broadcast_protocol()
        wrong = broadcast_protocol()
        wrong.metadata = dict(wrong.metadata)
        wrong.metadata["predicate"] = right.metadata["predicate"].negate()
        with Verifier() as verifier:
            batch = verifier.check_many([right, wrong], properties=["correctness"])
        assert batch.statistics["duplicates"] == 0
        assert [item.ok for item in batch] == [True, False]

    def test_check_many_with_plugin_property_and_parallel_engine(self):
        # Plugin checkers exist only in this process's registry; a parallel
        # batch must fall back to the coordinator's serial path instead of
        # shipping unresolvable names to worker processes.
        class CountStates(PropertyChecker):
            name = "count-states"

            def check(self, protocol, options, *, engine=None, predicate=None):
                return PropertyResult(
                    property=self.name,
                    verdict=Verdict.HOLDS,
                    details={"states": protocol.num_states},
                )

        register_property(CountStates())
        try:
            with Verifier(jobs=2) as verifier:
                batch = verifier.check_many(
                    [broadcast_protocol(), majority_protocol()],
                    properties=["count-states"],
                )
            assert [item.ok for item in batch] == [True, True]
            assert batch.items[1].report.result_for("count-states").details["states"] == 4
        finally:
            unregister_property("count-states")

    def test_check_many_non_ws3_properties(self):
        with Verifier() as verifier:
            batch = verifier.check_many(
                [broadcast_protocol(), coin_flip_protocol()],
                properties=["layered_termination"],
            )
        assert batch.statistics["properties"] == ["layered_termination"]
        assert [item.ok for item in batch] == [True, True]


class TestDeprecatedShims:
    """The five historical entry points warn but keep working."""

    def test_verify_ws3_warns(self):
        from repro.verification.ws3 import verify_ws3

        with pytest.warns(DeprecationWarning, match="use repro.api.Verifier"):
            result = verify_ws3(broadcast_protocol())
        assert result.is_ws3

    def test_check_layered_termination_warns(self):
        from repro.verification.layered_termination import check_layered_termination

        with pytest.warns(DeprecationWarning, match="use repro.api.Verifier"):
            result = check_layered_termination(broadcast_protocol())
        assert result.holds

    def test_check_strong_consensus_warns(self):
        from repro.verification.strong_consensus import check_strong_consensus

        with pytest.warns(DeprecationWarning, match="use repro.api.Verifier"):
            result = check_strong_consensus(broadcast_protocol())
        assert result.holds

    def test_check_correctness_warns(self):
        from repro.verification.correctness import check_correctness

        protocol = broadcast_protocol()
        with pytest.warns(DeprecationWarning, match="use repro.api.Verifier"):
            result = check_correctness(protocol, protocol.metadata["predicate"])
        assert result.holds

    def test_verify_many_warns(self):
        from repro.engine import verify_many

        with pytest.warns(DeprecationWarning, match="use repro.api.Verifier"):
            batch = verify_many([broadcast_protocol()])
        assert batch.all_ws3


class TestProtocolLoaders:
    """The spec loaders raise library exceptions, not SystemExit."""

    def test_family_spec(self):
        assert resolve_protocol_spec("broadcast").name == "broadcast"

    def test_parameterised_family_spec(self):
        protocol = resolve_protocol_spec("flock-of-birds:5")
        assert "5" in protocol.name

    def test_file_spec(self, tmp_path):
        from repro.io.serialization import protocol_to_json

        path = tmp_path / "p.json"
        path.write_text(protocol_to_json(broadcast_protocol()), encoding="utf-8")
        assert resolve_protocol_spec(str(path)).states == broadcast_protocol().states

    @pytest.mark.parametrize(
        "spec",
        [
            "no-such-family",
            "flock-of-birds:xyz",
            "flock-of-birds-threshold-n",
            "flock-of-birds:-3",
            "majority:5",
        ],
        ids=[
            "unknown",
            "bad-parameter",
            "missing-parameter",
            "out-of-range-parameter",
            "parameter-on-parameterless-family",
        ],
    )
    def test_bad_specs_raise_protocol_load_error(self, spec):
        with pytest.raises(ProtocolLoadError):
            resolve_protocol_spec(spec)

    def test_unreadable_file_raises_protocol_load_error(self, tmp_path):
        with pytest.raises(ProtocolLoadError, match="cannot read"):
            resolve_protocol_spec(str(tmp_path / "missing.json"))

    def test_invalid_json_raises_protocol_load_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ProtocolLoadError, match="not a valid protocol"):
            resolve_protocol_spec(str(path))

    def test_load_error_is_a_protocol_error(self):
        from repro.protocols.protocol import ProtocolError

        assert issubclass(ProtocolLoadError, ProtocolError)
