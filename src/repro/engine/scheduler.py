"""Process-pool scheduler for verification subproblems.

The scheduler executes :class:`~repro.engine.subproblem.Subproblem` batches
("waves") over a pool of worker processes and returns the results in the
deterministic input order, independent of completion timing.  Coordinators
(the verification modules, the batch front end) drive it wave by wave:
between waves they merge worker discoveries — trap/siphon refinements
learned while solving one pattern pair seed the CEGAR loops of the next
wave — and stop dispatching as soon as a decisive result (a SAT
counterexample, a successful layer partition) arrives, which is the
engine's early-cancellation policy: queued-but-not-started siblings are
cancelled, running siblings are awaited (they are wave peers of similar
cost), and later waves are never dispatched.

``jobs=1`` never creates a pool: subproblems are solved inline in the
coordinator process, so the serial behaviour (and failure modes) of the
pre-engine code are preserved exactly.

Fault tolerance.  A worker process dying mid-subproblem (OOM kill,
segfault, ``os._exit``), a subproblem exceeding its per-subproblem deadline
or an external teardown of the shared pool marks the affected positions
*lost*.  With a :class:`~repro.engine.retry.RetryPolicy` the lost positions
are quarantined for a bounded exponential backoff and resubmitted to a
fresh pool — already-collected sibling results are kept, so only the lost
work repeats; retrying never changes a verdict because subproblems are
deterministic.  Once a position exhausts its retry budget (and always, with
the default no-retry policy of bare engines) the failure surfaces as a
clean :class:`EngineError` instead of a hang or a bare ``BrokenProcessPool``
traceback.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from collections.abc import Callable, Sequence

from repro.engine import monitor
from repro.engine.retry import NO_RETRY, RetryPolicy
from repro.engine.subproblem import Subproblem, SubproblemResult
from repro.obs import trace
from repro.obs.metrics import REGISTRY
from repro.service.events import SubproblemCompleted, SubproblemDispatched, SubproblemRetried

#: Process-wide mirrors of the per-engine statistics (``GET /metricsz``)
#: plus the per-kind subproblem latency histogram harvested from result
#: envelopes (worker-side wall clock, so pool queueing is excluded).
_ENGINE_EVENTS = REGISTRY.counter(
    "repro_engine_events_total",
    "Engine scheduler events: waves, subproblems, retries, worker deaths, timeouts",
)
_SUBPROBLEM_SECONDS = REGISTRY.histogram(
    "repro_subproblem_seconds",
    "Worker-side subproblem solve time, by subproblem kind",
)

#: Bumped whenever a change to the engine or the verification layer can
#: alter verdicts, certificates or counterexamples; part of every result
#: cache key, so stale entries from older engines are never served.
#: "5": job-oriented service — envelopes carry job ids, reports embed the
#: progress-event trail in their statistics, AnalysisContext ships the
#: state-delta basis to workers.  (Retry/timeout handling is execution-only
#: and deliberately does not bump the version: a retried run returns the
#: same verdicts and artifacts as an undisturbed one.)
#: "6": incremental constraint IR — scoped deltas with base-level cut
#: promotion change the refinement sequences (and hence the reported
#: refinement lists/statistics) even though verdicts are unchanged, so
#: entries from older engines must not be served.
#: "7": observability — traced runs embed the span tree in
#: ``report.statistics["trace"]`` and subproblem envelopes carry worker
#: spans, so report payloads from older engines differ in shape.
ENGINE_VERSION = "7"


class EngineError(RuntimeError):
    """A subproblem could not be completed (worker death, timeout, ...)."""


class _RoundOutcome:
    """What one dispatch round of a wave left behind."""

    __slots__ = ("lost", "reasons", "culprits", "stopping")

    def __init__(self):
        self.lost: list[int] = []
        self.reasons: dict[int, str] = {}
        self.culprits: set[int] = set()
        self.stopping = False

    def mark_lost(self, position: int, reason: str, culprit: bool) -> None:
        self.lost.append(position)
        self.reasons[position] = reason
        if culprit:
            self.culprits.add(position)


class VerificationEngine:
    """Schedules verification subproblems over a process pool.

    Parameters
    ----------
    jobs:
        Number of worker processes.  ``1`` solves everything inline in the
        current process (no pool, no pickling) — the exact serial code path.
    wave_timeout:
        Optional per-wave timeout in seconds; a wave that exceeds it raises
        :class:`EngineError` instead of blocking forever.  The wave budget
        spans retries (a retried wave does not get a fresh clock).
    retry:
        A :class:`~repro.engine.retry.RetryPolicy`.  Bare engines default
        to :data:`~repro.engine.retry.NO_RETRY` (the historical fail-fast
        behaviour); the service passes ``options.retry``.
    """

    def __init__(
        self,
        jobs: int = 1,
        wave_timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.wave_timeout = wave_timeout
        self.retry = NO_RETRY if retry is None else retry
        self._executor: concurrent.futures.ProcessPoolExecutor | None = None
        # Concurrent service jobs share one engine from different dispatcher
        # threads; pool creation must not race (a lost pool would leak its
        # worker processes) and the statistics counters are read-modify-write.
        self._executor_lock = threading.Lock()
        self._statistics_lock = threading.Lock()
        self.statistics = {
            "waves": 0,
            "subproblems": 0,
            "cancelled": 0,
            "failed_after_stop": 0,
            "retries": 0,
            "worker_deaths": 0,
            "timeouts": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def _count(self, counter: str, amount: int = 1) -> None:
        """Thread-safe statistics increment (dispatcher threads share engines)."""
        with self._statistics_lock:
            self.statistics[counter] += amount
        _ENGINE_EVENTS.inc(amount, event=counter)

    def _ensure_executor(self) -> concurrent.futures.ProcessPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = concurrent.futures.ProcessPoolExecutor(max_workers=self.jobs)
            return self._executor

    def shutdown(self, kill: bool = False) -> None:
        """Tear down the pool; ``kill`` also terminates the worker processes.

        Plain shutdown lets running tasks finish in the background.  After a
        timeout the wedged worker would keep burning CPU forever, so the
        timeout path passes ``kill=True`` and the workers are terminated
        outright (reaching into the executor's process table is the only way
        ProcessPoolExecutor offers).
        """
        with self._executor_lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            processes = list(getattr(executor, "_processes", {}).values()) if kill else []
            executor.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                process.terminate()

    def __enter__(self) -> "VerificationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_wave(
        self,
        subproblems: Sequence[Subproblem],
        stop_on: Callable[[SubproblemResult], bool] | None = None,
    ) -> list[SubproblemResult | None]:
        """Solve one wave of subproblems; results are in input order.

        With ``stop_on``, dispatch is cut short once a decisive result is
        seen: futures that have not started yet are cancelled and their
        slots are ``None`` (already-running wave peers still complete and
        are reported).  Determinism note: coordinators must not let the
        *content* of later waves depend on which same-wave peers finished
        before the decisive one — the two parallel consumers in the
        verification layer satisfy this by construction (StrongConsensus
        falls back to a serial re-run on SAT; the strategy portfolio ranks
        completed results by priority).
        """
        if not subproblems:
            return []
        # Wave boundary: the one place the engine honours cooperative job
        # cancellation.  A cancelled job never dispatches another wave, so
        # its share of the pool frees up for concurrently scheduled jobs.
        monitor.check_cancelled()
        with self._statistics_lock:
            self.statistics["waves"] += 1
            self.statistics["subproblems"] += len(subproblems)
            engine_wave = self.statistics["waves"]
        _ENGINE_EVENTS.inc(event="waves")
        _ENGINE_EVENTS.inc(len(subproblems), event="subproblems")
        # Event streams number waves per *job* (the engine-global counter
        # interleaves concurrent jobs); plain engine use keeps the global.
        wave = monitor.next_wave_index(fallback=engine_wave)
        if trace.tracing_active() and self.parallel:
            # Workers cannot see the coordinator's sink; the envelope flag
            # asks them to collect locally and ship spans home for adoption.
            for subproblem in subproblems:
                subproblem.params.setdefault("trace", True)
        with trace.span("engine.wave", index=wave, size=len(subproblems)):
            return self._run_wave_body(subproblems, stop_on, wave)

    def _run_wave_body(
        self,
        subproblems: Sequence[Subproblem],
        stop_on: Callable[[SubproblemResult], bool] | None,
        wave: int,
    ) -> list[SubproblemResult | None]:
        if not self.parallel:
            return self._run_inline(subproblems, stop_on, wave)

        results: list[SubproblemResult | None] = [None] * len(subproblems)
        outstanding = list(range(len(subproblems)))
        attempts = dict.fromkeys(outstanding, 1)
        wave_deadline = (
            None if self.wave_timeout is None else time.monotonic() + self.wave_timeout
        )
        while True:
            outcome = self._run_round(subproblems, outstanding, results, stop_on, wave, wave_deadline)
            if not outcome.lost:
                return results
            if outcome.stopping:
                # A decisive result was already collected; the lost peers sit
                # past the serial stopping point, so they are dropped exactly
                # like any other post-decision failure.
                self._count("failed_after_stop", len(outcome.lost))
                return results
            # Only the culprit of a teardown burns retry budget; peers that
            # were merely caught in the pool teardown are resubmitted free
            # (every faulty round has at least one culprit, so the loop
            # still terminates).
            for position in outcome.culprits:
                attempts[position] += 1
            exhausted = sorted(
                position
                for position in outcome.culprits
                if attempts[position] > self.retry.max_retries + 1
            )
            if exhausted:
                position = exhausted[0]
                reason = outcome.reasons[position]
                if self.retry.enabled:
                    raise EngineError(
                        f"{reason}; retries exhausted after {attempts[position] - 1} attempt(s)"
                    )
                raise EngineError(reason)
            outstanding = sorted(outcome.lost)
            self._count("retries", len(outstanding))
            delay = max(self.retry.backoff_delay(attempts[p] - 1) for p in outstanding)
            for position in outstanding:
                self._emit_retried(
                    subproblems[position],
                    attempts[position],
                    delay,
                    outcome.reasons[position],
                )
            if delay > 0:
                # Quarantine: give a transiently sick host (OOM pressure, a
                # dying sibling) room to recover before the fresh pool spawns.
                time.sleep(delay)

    def _run_round(
        self,
        subproblems: Sequence[Subproblem],
        positions: Sequence[int],
        results: list,
        stop_on: Callable[[SubproblemResult], bool] | None,
        wave: int,
        wave_deadline: float | None,
    ) -> _RoundOutcome:
        """Dispatch ``positions`` once and collect in order; losses are recorded.

        On the first worker death / deadline overrun / external cancellation
        the pool is torn down and the round switches to *harvest* mode:
        already-completed siblings keep their results, everything else joins
        the lost set (as non-culprits) for the caller to resubmit.
        """
        from repro.engine.worker import solve_subproblem

        executor = self._ensure_executor()
        try:
            futures = {
                position: executor.submit(solve_subproblem, subproblems[position])
                for position in positions
            }
        except RuntimeError as error:  # pool already broken/shut down
            self.shutdown()
            raise EngineError(f"could not dispatch subproblems: {error}") from error
        dispatched_at = time.monotonic()
        for position in positions:
            self._emit_dispatched(subproblems[position], wave)

        outcome = _RoundOutcome()
        pending = dict(futures)
        subproblem_timeout = self.retry.subproblem_timeout
        teardown_reason = "{label} was abandoned when the worker pool was torn down mid-wave"
        try:
            for position in positions:
                future = futures[position]
                label = subproblems[position].label
                if outcome.lost:
                    # Harvest mode: the pool is gone; keep whatever finished
                    # cleanly, requeue the rest as teardown victims.
                    pending.pop(position, None)
                    if future.done() and not future.cancelled() and future.exception() is None:
                        results[position] = future.result()
                        self._emit_completed(subproblems[position], results[position])
                    else:
                        outcome.mark_lost(
                            position, teardown_reason.format(label=label), culprit=False
                        )
                    continue
                if outcome.stopping and not future.running() and future.cancel():
                    self._count("cancelled")
                    pending.pop(position, None)
                    continue
                deadline = wave_deadline
                if subproblem_timeout is not None:
                    own_deadline = dispatched_at + subproblem_timeout
                    deadline = own_deadline if deadline is None else min(deadline, own_deadline)
                remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
                try:
                    results[position] = future.result(timeout=remaining)
                except concurrent.futures.CancelledError:
                    # The engine only cancels futures itself once ``stopping``
                    # is set.  Any other cancellation is external — a sibling
                    # job's failure tore the shared pool down — and a silent
                    # ``None`` here would read as "skipped after a decisive
                    # result", letting a refinement sweep claim success over
                    # pairs that were never solved.  The position is lost
                    # (and, under a retry policy, resubmitted to a fresh pool).
                    if not outcome.stopping:
                        self.shutdown()
                        outcome.mark_lost(
                            position,
                            f"{label} was cancelled externally "
                            "(the shared worker pool was shut down mid-wave)",
                            culprit=True,
                        )
                        pending.pop(position, None)
                        continue
                    self._count("cancelled")
                except concurrent.futures.TimeoutError as error:
                    if outcome.stopping:
                        self._drop_failed_peer(teardown=True)
                        pending.pop(position, None)
                        continue
                    self.shutdown(kill=True)
                    pending.pop(position, None)
                    if wave_deadline is not None and time.monotonic() >= wave_deadline:
                        # The whole-wave budget is spent; retrying would
                        # overdraw it, so this surfaces immediately.
                        raise EngineError(
                            f"wave exceeded its {self.wave_timeout}s budget while waiting on "
                            f"{label}"
                        ) from error
                    self._count("timeouts")
                    outcome.mark_lost(
                        position,
                        f"{label} exceeded its {subproblem_timeout}s deadline "
                        "(the worker was killed)",
                        culprit=True,
                    )
                    continue
                except concurrent.futures.process.BrokenProcessPool:
                    if outcome.stopping:
                        self._drop_failed_peer(teardown=True)
                        pending.pop(position, None)
                        continue
                    self._count("worker_deaths")
                    self.shutdown(kill=True)
                    pending.pop(position, None)
                    outcome.mark_lost(
                        position,
                        f"a worker process died while solving {label}; "
                        "the remaining subproblems of this wave were abandoned",
                        culprit=True,
                    )
                    continue
                except Exception:
                    # A deterministic in-task exception: retrying cannot help,
                    # so it propagates exactly as in serial order — unless a
                    # decisive result was already collected, in which case the
                    # failed peer sits past the serial stopping point and its
                    # error must not mask the verdict.
                    if outcome.stopping:
                        self._drop_failed_peer(teardown=False)
                        pending.pop(position, None)
                        continue
                    raise
                pending.pop(position, None)
                result = results[position]
                if result is not None:
                    self._emit_completed(subproblems[position], result)
                if stop_on is not None and result is not None and stop_on(result):
                    outcome.stopping = True
        except EngineError:
            self.shutdown()
            raise
        except BaseException:
            for future in pending.values():
                future.cancel()
            raise
        return outcome

    def _drop_failed_peer(self, teardown: bool) -> None:
        """Discard a wave peer that failed after a decisive result arrived.

        ``teardown`` tears the pool down (dead worker, hung task — it is no
        longer trustworthy); an ordinary in-task exception leaves the pool
        usable for the next wave.
        """
        self._count("failed_after_stop")
        if teardown:
            self.shutdown(kill=True)

    def _run_inline(
        self,
        subproblems: Sequence[Subproblem],
        stop_on: Callable[[SubproblemResult], bool] | None,
        wave: int,
    ) -> list[SubproblemResult | None]:
        from repro.engine.worker import solve_subproblem

        results: list[SubproblemResult | None] = [None] * len(subproblems)
        for position, subproblem in enumerate(subproblems):
            if position:
                # Inline, each subproblem is its own wave boundary: serial
                # jobs observe cancellation between subproblems.
                monitor.check_cancelled()
            self._emit_dispatched(subproblem, wave)
            results[position] = solve_subproblem(subproblem)
            self._emit_completed(subproblem, results[position])
            if stop_on is not None and stop_on(results[position]):
                self._count("cancelled", len(subproblems) - position - 1)
                break
        return results

    @staticmethod
    def _emit_dispatched(subproblem: Subproblem, wave: int) -> None:
        monitor.emit(
            lambda job_id: SubproblemDispatched(
                job_id=subproblem.job_id or job_id,
                kind=subproblem.kind,
                index=subproblem.index,
                wave=wave,
            )
        )

    @staticmethod
    def _emit_completed(subproblem: Subproblem, result: SubproblemResult) -> None:
        _SUBPROBLEM_SECONDS.observe(
            float(result.statistics.get("time", 0.0)), kind=subproblem.kind
        )
        # Worker-side spans ride home in the result envelope; adopt them
        # under the coordinator's current span (the CEGAR iteration or
        # strategy span that dispatched the wave), keeping one rooted tree.
        if result.spans:
            trace.adopt_spans(result.spans)
        monitor.emit(
            lambda job_id: SubproblemCompleted(
                job_id=subproblem.job_id or job_id,
                kind=subproblem.kind,
                index=subproblem.index,
                verdict=result.verdict,
                time_seconds=float(result.statistics.get("time", 0.0)),
            )
        )

    @staticmethod
    def _emit_retried(
        subproblem: Subproblem, attempt: int, delay: float, reason: str
    ) -> None:
        monitor.emit(
            lambda job_id: SubproblemRetried(
                job_id=subproblem.job_id or job_id,
                kind=subproblem.kind,
                index=subproblem.index,
                attempt=attempt,
                delay_seconds=delay,
                reason=reason,
            )
        )


# ----------------------------------------------------------------------
# Coordination helpers shared by the CEGAR-style parallel checks
# ----------------------------------------------------------------------


def wave_plan(total: int, jobs: int) -> list[tuple[int, int]]:
    """Deterministic wave boundaries: a warm-up wave of one, then ``jobs``.

    The first subproblem runs alone because it does the bulk of the
    trap/siphon discovery (exactly as in the serial sweep); every later
    subproblem is then seeded with those refinements instead of
    rediscovering them concurrently, which both avoids duplicated work
    across workers and keeps the merged refinement list essentially the
    serial one.
    """
    if total <= 0:
        return []
    plan = [(0, 1)]
    start = 1
    while start < total:
        end = min(start + max(jobs, 1), total)
        plan.append((start, end))
        start = end
    return plan


def run_refinement_sweep(
    engine: VerificationEngine,
    total: int,
    build_subproblems: Callable[[int, int, list], Sequence[Subproblem]],
    statistics: dict,
) -> tuple[bool, list]:
    """Drive a refinement-sharing sweep over ``total`` CEGAR subproblems.

    ``build_subproblems(start, end, seed_refinements)`` packages one wave of
    the deterministic enumeration.  Workers report the trap/siphon steps
    they discovered; the coordinator merges them in subproblem order
    (deduplicated on ``(kind, states)``) and seeds the next wave with the
    union, so learned refinements cross worker boundaries.  Dispatch stops
    at the first SAT result (queued siblings are cancelled).

    Returns ``(sat_seen, refinements)``; ``statistics`` is updated in place
    and must carry the ``waves`` / ``pattern_pairs`` / ``iterations`` /
    ``solver_instances`` / ``traps`` / ``siphons`` counters.
    """
    refinements: list = []
    seen: set[tuple] = set()
    sat_seen = False
    for wave_start, wave_end in wave_plan(total, engine.jobs):
        results = engine.run_wave(
            build_subproblems(wave_start, wave_end, refinements),
            stop_on=lambda result: result.verdict == "sat",
        )
        statistics["waves"] += 1
        for result in results:
            if result is None:  # cancelled after a decisive sibling
                continue
            statistics["pattern_pairs"] += 1
            statistics["iterations"] += result.statistics.get("iterations", 0)
            if result.verdict == "pruned":
                statistics["pruned_pairs"] = statistics.get("pruned_pairs", 0) + 1
            else:
                statistics["solver_instances"] += 1
            for step in result.data.get("refinements", ()):
                key = (step.kind, step.states)
                if key not in seen:
                    seen.add(key)
                    refinements.append(step)
                    statistics["traps" if step.kind == "trap" else "siphons"] += 1
                    monitor.emit_refinement_found(step.kind, step.states, step.iteration)
            if result.verdict == "sat":
                sat_seen = True
        if sat_seen:
            break
    return sat_seen, refinements
