"""Ablation: the trap/siphon CEGAR refinement and the two StrongConsensus strategies.

Two design choices called out in DESIGN.md are measured here:

* *Refinement demand*: the paper notes that the flock-of-birds protocols are
  the only family needing (linearly) many U-trap refinements.  The first
  group of benchmarks records StrongConsensus time as the flock parameter
  grows and asserts that the number of refinements grows with c.

* *Terminal-constraint handling*: our default strategy replaces the paper's
  monolithic ``Terminal(c)`` disjunctions (delegated to Z3 in the original
  tool) by an explicit enumeration of terminal support patterns.  The second
  group compares the two strategies on protocols small enough for the
  monolithic encoding to be practical with the from-scratch solver.
"""

from __future__ import annotations

import pytest

from repro.protocols.library import (
    broadcast_protocol,
    flock_of_birds_protocol,
    majority_protocol,
)
from repro.verification.strong_consensus import check_strong_consensus

from .conftest import run_once

FLOCK_PARAMETERS = [3, 4, 5, 6]


@pytest.mark.parametrize("c", FLOCK_PARAMETERS)
def test_flock_refinement_demand(benchmark, c):
    protocol = flock_of_birds_protocol(c)
    result = run_once(benchmark, check_strong_consensus, protocol)
    assert result.holds
    # The paper observes linearly many trap/siphon refinements for this family.
    assert len(result.refinements) >= c - 2


@pytest.mark.parametrize("strategy", ["patterns", "monolithic"])
def test_majority_strategy_comparison(benchmark, strategy):
    protocol = majority_protocol()
    result = run_once(benchmark, check_strong_consensus, protocol, strategy=strategy)
    assert result.holds


@pytest.mark.parametrize("strategy", ["patterns", "monolithic"])
def test_broadcast_strategy_comparison(benchmark, strategy):
    protocol = broadcast_protocol()
    result = run_once(benchmark, check_strong_consensus, protocol, strategy=strategy)
    assert result.holds


@pytest.mark.parametrize("strategy", ["patterns", "monolithic"])
def test_small_flock_strategy_comparison(benchmark, strategy):
    protocol = flock_of_birds_protocol(3)
    result = run_once(benchmark, check_strong_consensus, protocol, strategy=strategy)
    assert result.holds
