"""Flock-of-birds case study: scalable verification vs. per-input model checking.

The motivating scenario of the population-protocol literature: temperature
sensors on birds should raise an alarm when at least ``c`` birds have a
fever.  Earlier verification tools could only check one initial population
at a time; the WS³ verifier proves well-specification for *all* populations
at once.  This example

1. verifies the two flock-of-birds protocol families used in the paper's
   evaluation (the [6] accumulation variant and the [8] "threshold-n"
   variant),
2. shows the per-input explicit-state baseline getting slower as the flock
   grows, while the WS³ proof covers every flock size,
3. simulates the alarm spreading through a large flock.

Run with::

    python examples/flock_of_birds.py
"""

from __future__ import annotations

import time

from repro.protocols.library import (
    flock_of_birds_protocol,
    flock_of_birds_threshold_n_protocol,
)
from repro.protocols.simulation import Simulator
from repro.verification.explicit import verify_single_input
from repro.verification.ws3 import verify_ws3


def main() -> None:
    threshold = 5
    protocol = flock_of_birds_protocol(threshold)
    tower_protocol = flock_of_birds_threshold_n_protocol(threshold)

    print(f"--- WS3 verification (all of the infinitely many inputs), c = {threshold}")
    for candidate in (protocol, tower_protocol):
        result = verify_ws3(candidate)
        print(
            f"{candidate.name}: |Q|={candidate.num_states}, |T|={candidate.num_transitions}, "
            f"WS3={result.is_ws3}, time={result.statistics['time']:.2f}s, "
            f"trap/siphon refinements={result.statistics['refinements']}"
        )

    print()
    print("--- the old way: explicit model checking of single inputs")
    for sick in range(4, 9):
        population = {"sick": sick, "healthy": 3}
        start = time.perf_counter()
        verdict = verify_single_input(protocol, population)
        elapsed = time.perf_counter() - start
        print(
            f"input {population}: well specified={verdict.well_specified}, output={verdict.output}, "
            f"{verdict.num_configurations} configurations explored in {elapsed:.2f}s"
        )

    print()
    print("--- simulation of a large flock")
    simulator = Simulator(protocol, seed=2024)
    for sick in (threshold - 1, threshold, threshold + 20):
        run = simulator.run(input_population={"sick": sick, "healthy": 40})
        print(
            f"{sick} sick birds among {sick + 40}: alarm={'raised' if run.output else 'not raised'} "
            f"after {run.steps} interactions"
        )


if __name__ == "__main__":
    main()
