#!/usr/bin/env python
"""Run the fixed verification benchmark subset and record a perf snapshot.

Writes ``BENCH_<n>.json`` (next free ``n``) in the repository root with one
entry per benchmark instance: protocol name, |Q|, |T|, the verification
verdict, wall-clock time, and the constraint-solver statistics (theory
checks, cache hits/misses, CEGAR refinements).  The snapshot also records
the selected properties and the full verification-options snapshot, so two
snapshots can only be compared apples-to-apples.  Successive PRs diff these
snapshots to track the performance trajectory.

Usage::

    PYTHONPATH=src python scripts/bench.py            # default subset, serial
    PYTHONPATH=src python scripts/bench.py --jobs 4   # parallel engine, 4 workers
    PYTHONPATH=src python scripts/bench.py --large    # adds the heavier rows
    PYTHONPATH=src python scripts/bench.py --cache-dir .repro-cache  # result cache
    PYTHONPATH=src python scripts/bench.py --output out.json

The output path is picked automatically (the next free ``BENCH_<n>.json``);
``--jobs`` and the engine result-cache traffic are recorded in the snapshot,
so serial vs. parallel and cold vs. warm-cache runs can be diffed directly.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import VerificationOptions, Verifier  # noqa: E402
from repro.protocols.library import (  # noqa: E402
    broadcast_protocol,
    flock_of_birds_protocol,
    flock_of_birds_threshold_n_protocol,
    majority_protocol,
    remainder_protocol,
    threshold_table_protocol,
)

#: The property set every benchmark instance is checked against.
PROPERTIES = ("ws3",)


def network_serving_block(jobs: int) -> dict:
    """Serving-tier throughput/latency: the load harness against an
    in-process :class:`~repro.service.net.NetworkServer`.

    Reuses :func:`serve_smoke.run_load` (N concurrent TCP clients × M
    submit→wait→result jobs), so the bench snapshot and the CI load smoke
    measure exactly the same path: client retry loop, JSON-lines framing,
    admission control, the service queue and the verification engine.
    """
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    from serve_smoke import run_load

    from repro.service import NetworkServer, VerificationService

    service = VerificationService(workers=max(2, jobs))
    server = NetworkServer(service)
    host, port = server.start()
    try:
        summary = run_load(host, port, clients=4, jobs=2)
        # The stats op the router's fleet aggregation is built on: per-server
        # counters (connections accepted/shed, frames discarded, jobs
        # admitted/finished, event-pump drops) plus service/cache/journal
        # counters, snapshotted over the wire after the load.
        from repro.service import VerificationClient

        with VerificationClient(host, port, timeout=60) as client:
            response = client.call({"op": "stats"})
        summary["statsz"] = response.get("stats") if response.get("ok") else None
    finally:
        server.drain(timeout=60)
    summary["server_statistics"] = dict(server.statistics)
    return summary


def benchmark_suite(large: bool):
    """The fixed subset: (family, parameter label, protocol factory)."""
    rows = [
        ("majority", "-", majority_protocol),
        ("broadcast", "-", broadcast_protocol),
        ("flock-of-birds", "c=4", lambda: flock_of_birds_protocol(4)),
        ("flock-of-birds", "c=6", lambda: flock_of_birds_protocol(6)),
        ("threshold-n", "c=5", lambda: flock_of_birds_threshold_n_protocol(5)),
        ("threshold-n", "c=8", lambda: flock_of_birds_threshold_n_protocol(8)),
        ("remainder", "m=5", lambda: remainder_protocol([1], 5, 3)),
        ("threshold", "vmax=2", lambda: threshold_table_protocol(2)),
    ]
    if large:
        rows += [
            ("flock-of-birds", "c=8", lambda: flock_of_birds_protocol(8)),
            ("threshold-n", "c=10", lambda: flock_of_birds_threshold_n_protocol(10)),
            ("remainder", "m=8", lambda: remainder_protocol([1], 8, 3)),
            ("threshold", "vmax=3", lambda: threshold_table_protocol(3)),
        ]
    return rows


def _entry_from_report(family: str, parameter: str, protocol, report, elapsed: float, from_cache: bool) -> dict:
    layered = report.result_for("layered_termination")
    strong = report.result_for("strong_consensus")
    entry = {
        "family": family,
        "parameter": parameter,
        "protocol": protocol.name,
        "num_states": protocol.num_states,
        "num_transitions": protocol.num_transitions,
        "is_ws3": report.is_ws3,
        "wall_clock_seconds": round(elapsed, 4),
        "layered_termination": {
            "holds": layered.holds if layered is not None else None,
            "strategy": (layered.statistics.get("strategy") if layered is not None else None),
            "time": (None if from_cache else layered.statistics.get("time")) if layered is not None else None,
        },
    }
    if from_cache:
        entry["from_cache"] = True
    if strong is not None and strong.verdict.value != "skipped":
        entry["strong_consensus"] = {
            "holds": strong.holds,
            "iterations": None if from_cache else strong.statistics.get("iterations"),
            "pattern_pairs": None if from_cache else strong.statistics.get("pattern_pairs"),
            "refinements": len(strong.refinements),
            "time": None if from_cache else strong.statistics.get("time"),
            "solver": {} if from_cache else strong.statistics.get("solver", {}),
            # IR simplifier savings: constraints before/after normalisation.
            "simplifier": None if from_cache else strong.statistics.get("simplifier"),
        }
    return entry


def run_instance(family: str, parameter: str, factory, verifier: Verifier, cache=None) -> dict:
    protocol = factory()
    if cache is not None:
        from repro.engine import ENGINE_VERSION, ResultCache, protocol_content_hash
        from repro.engine.batch import batch_cache_options

        key = ResultCache.entry_key(
            protocol_content_hash(protocol),
            ENGINE_VERSION,
            batch_cache_options(PROPERTIES, verifier.options),
        )
        start = time.perf_counter()
        cached = cache.get(key)
        if cached is not None:
            from repro.api import VerificationReport

            # Timings and solver counters are not meaningful for a cache
            # hit, so those fields are nulled; the verdict block shapes are
            # kept so cold and warm snapshots diff cleanly.
            report = VerificationReport.from_dict(cached)
            return _entry_from_report(
                family, parameter, protocol, report, time.perf_counter() - start, from_cache=True
            )
    start = time.perf_counter()
    report = verifier.check(protocol, properties=PROPERTIES)
    elapsed = time.perf_counter() - start
    if cache is not None:
        cache.put(key, report.to_dict())
    return _entry_from_report(family, parameter, protocol, report, elapsed, from_cache=False)


def next_output_path() -> Path:
    taken = set()
    for path in REPO_ROOT.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            taken.add(int(match.group(1)))
    index = 0
    while index in taken:
        index += 1
    return REPO_ROOT / f"BENCH_{index}.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--large", action="store_true", help="include the heavier instances")
    parser.add_argument("--output", type=Path, default=None, help="output path (default: BENCH_<n>.json)")
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the verification engine"
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="solver backend (smtlite, scipy-ilp, portfolio; default: $REPRO_BACKEND or smtlite)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="use (and record traffic of) the engine result cache in this directory",
    )
    parser.add_argument(
        "--no-network",
        action="store_true",
        help="skip the network-serving throughput/latency block",
    )
    args = parser.parse_args(argv)

    cache = None
    if args.cache_dir is not None:
        from repro.engine import ResultCache

        cache = ResultCache(args.cache_dir)

    overrides = {"jobs": args.jobs}
    if args.backend is not None:
        overrides["backend"] = args.backend
    options = VerificationOptions(**overrides)
    entries = []
    with Verifier(options) as verifier:
        for family, parameter, factory in benchmark_suite(args.large):
            print(f"running {family} {parameter} ...", flush=True)
            entry = run_instance(family, parameter, factory, verifier, cache=cache)
            print(
                f"  |Q|={entry['num_states']} |T|={entry['num_transitions']} "
                f"ws3={entry['is_ws3']} time={entry['wall_clock_seconds']}s"
                + (" [cache]" if entry.get("from_cache") else ""),
                flush=True,
            )
            entries.append(entry)
        # Fault-tolerance counters of the run: retries/worker deaths/timeouts
        # absorbed by the engine, plus any backend demotions.  All zero on a
        # healthy machine — a nonzero diff between snapshots flags flaky
        # infrastructure before it flags a perf regression.
        from repro.constraints.backends import health_statistics

        engine = verifier.engine
        engine_stats = dict(engine.statistics) if engine is not None else {}
        fault_tolerance = {
            "retries": engine_stats.get("retries", 0),
            "worker_deaths": engine_stats.get("worker_deaths", 0),
            "timeouts": engine_stats.get("timeouts", 0),
            "backend_health": health_statistics(),
            "retry_policy": options.retry.to_dict(),
        }

    network_serving = None
    if not args.no_network:
        print("running network serving load ...", flush=True)
        network_serving = network_serving_block(args.jobs)
        print(
            f"  {network_serving['completed']}/{network_serving['jobs_total']} jobs at "
            f"{network_serving['throughput_jobs_per_second']} jobs/s "
            f"(p95={network_serving.get('latency_seconds', {}).get('p95')}s)",
            flush=True,
        )

    # Incremental-IR counters accumulated across the whole suite: scope
    # traffic, delta-simplification savings, base-level cut promotions and
    # learned-core retention.  A snapshot with incrementality disabled
    # (REPRO_INCREMENTAL=0) records all-zero scope counters, so the diff
    # shows exactly what the scoped-delta machinery did.
    from repro.constraints.incremental import incremental_statistics

    # The process-global metrics registry, snapshotted once at the end:
    # the same counters and latency histograms ``GET /metricsz`` exposes
    # (cache, incremental IR, engine retries, network tier), accumulated
    # over the whole bench run.  Diffing this block between snapshots
    # tracks counter drift without re-deriving it from per-entry stats.
    from repro.obs.metrics import REGISTRY

    snapshot = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "large": args.large,
        "jobs": args.jobs,
        "backend": options.backend,
        "cpu_count": os.cpu_count(),
        "properties": list(PROPERTIES),
        "options": options.to_dict(),
        "engine_cache": dict(cache.statistics) if cache is not None else None,
        "fault_tolerance": fault_tolerance,
        "incremental": incremental_statistics(),
        "metrics_registry": REGISTRY.snapshot(),
        "network_serving": network_serving,
        "total_seconds": round(sum(entry["wall_clock_seconds"] for entry in entries), 4),
        "benchmarks": entries,
    }
    output = args.output or next_output_path()
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
