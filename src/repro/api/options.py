"""One validated place for every knob of a verification session.

Before this module existed, solver/strategy/engine configuration was
threaded as loose keyword arguments through five separate entry points.
:class:`VerificationOptions` gathers all of it: a frozen, hashable
dataclass validated at construction, with a lossless ``to_dict`` /
``from_dict`` pair (used to ship options to worker processes and to stamp
the options snapshot into every report) and a ``cache_snapshot`` that
names exactly the fields allowed to key cached verdicts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

#: Partition-search strategies for LayeredTermination.
STRATEGIES = ("auto", "hint", "single", "scc", "smt")
#: Constraint-solver theory backends.
THEORIES = ("auto", "scipy", "exact")
#: StrongConsensus solving strategies.
CONSENSUS_STRATEGIES = ("auto", "patterns", "monolithic")


def _default_backend() -> str:
    """The default solver backend, overridable via ``REPRO_BACKEND``.

    The environment hook is what the CI backend matrix uses: exporting
    ``REPRO_BACKEND=scipy-ilp`` runs every ``Verifier`` (and every
    deprecated shim) of a process against that backend without touching a
    single call site.
    """
    from repro.constraints.backends import resolve_backend_name

    return resolve_backend_name(None)


def _default_incremental() -> bool:
    """The incremental-IR default, from ``REPRO_INCREMENTAL`` (on unless 0)."""
    from repro.constraints.incremental import incremental_enabled

    return incremental_enabled()


def _default_retry():
    """The service-tier retry/timeout policy (see :mod:`repro.engine.retry`).

    Imported lazily: ``repro.engine`` itself imports this module at package
    init, so a top-level import would be circular.
    """
    from repro.engine.retry import DEFAULT_RETRY

    return DEFAULT_RETRY


@dataclass(frozen=True)
class VerificationOptions:
    """Configuration of a :class:`~repro.api.verifier.Verifier` session.

    Parameters
    ----------
    strategy:
        Partition-search strategy for LayeredTermination.
    theory:
        Theory-solver preference inside a backend (``"auto"``, ``"scipy"``,
        ``"exact"``).
    backend:
        Solver backend from the registry
        (:func:`repro.constraints.backends.available_backends`):
        ``"smtlite"`` (DPLL(T)), ``"scipy-ilp"`` (direct ILP case
        splitting) or ``"portfolio"``.  Defaults to the ``REPRO_BACKEND``
        environment variable, falling back to ``"smtlite"``.
    max_layers:
        Layer bound of the exact SMT partition search (``None`` = default).
    materialize_rankings:
        Materialise per-layer ranking functions in LT certificates.
    check_consensus_first:
        Run StrongConsensus before LayeredTermination in the WS³ check.
    consensus_strategy:
        ``"auto"``, ``"patterns"`` or ``"monolithic"`` for StrongConsensus.
    max_refinements:
        Bound on CEGAR trap/siphon refinement iterations.
    max_pattern_pairs:
        Pattern-pair budget above which ``"auto"`` falls back to the
        monolithic StrongConsensus encoding.
    explicit_max_size:
        Input-population bound of the ``"explicit"`` property (the
        explicit-state baseline sweeps all inputs up to this size).
    explicit_max_configurations:
        Reachability-graph size bound of the explicit-state baseline.
    jobs:
        Worker processes for the parallel engine (1 = serial).
    incremental:
        Use the incremental constraint IR (scoped deltas, base-level cut
        promotion, delta-aware simplification) in the CEGAR loops.  Defaults
        to the ``REPRO_INCREMENTAL`` environment variable (on unless set to
        ``0``).  Verdicts are identical either way (asserted by the backend
        parity tests), so — like ``jobs`` — the flag is execution-only and
        excluded from cache keys.
    retry:
        A :class:`~repro.engine.retry.RetryPolicy`: how lost subproblems
        (worker deaths, per-subproblem deadlines) are retried and what the
        whole-job wall-clock budget is.  Accepts a plain dictionary (the
        ``to_dict`` form) for convenience.  Execution-only — excluded from
        cache keys like ``jobs``.
    cache_dir:
        Directory of the content-addressed result cache used by
        ``check_many`` (``None`` disables caching).
    trace:
        Collect hierarchical trace spans (job → property → CEGAR iteration
        → subproblem → solver check) and embed them under
        ``report.statistics["trace"]``; the CLI ``--trace out.json`` flag
        turns them into a Chrome-trace file.  Execution-only — a traced run
        returns the same verdicts and artifacts, so the flag is excluded
        from cache keys like ``jobs``.
    profile:
        Capture per-job phase timing (wall/CPU per property) plus a
        ``cProfile`` run of the coordinating thread under
        ``report.statistics["profile"]``.  Execution-only, excluded from
        cache keys.
    """

    strategy: str = "auto"
    theory: str = "auto"
    backend: str = field(default_factory=_default_backend)
    max_layers: int | None = None
    materialize_rankings: bool = False
    check_consensus_first: bool = False
    consensus_strategy: str = "auto"
    max_refinements: int = 10_000
    max_pattern_pairs: int = 250_000
    explicit_max_size: int = 4
    explicit_max_configurations: int = 200_000
    jobs: int = 1
    incremental: bool = field(default_factory=_default_incremental)
    retry: object = field(default_factory=_default_retry)
    cache_dir: str | None = None
    trace: bool = False
    profile: bool = False

    def __post_init__(self) -> None:
        from repro.engine.retry import RetryPolicy

        if isinstance(self.retry, dict):
            object.__setattr__(self, "retry", RetryPolicy.from_dict(self.retry))
        if not isinstance(self.retry, RetryPolicy):
            raise ValueError(
                f"retry must be a RetryPolicy (or its dict form), got {self.retry!r}"
            )
        if self.strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}, got {self.strategy!r}")
        if self.theory not in THEORIES:
            raise ValueError(f"theory must be one of {THEORIES}, got {self.theory!r}")
        from repro.constraints.backends import available_backends

        if self.backend not in available_backends():
            raise ValueError(
                f"backend must be one of {available_backends()}, got {self.backend!r}"
            )
        if self.consensus_strategy not in CONSENSUS_STRATEGIES:
            raise ValueError(
                f"consensus_strategy must be one of {CONSENSUS_STRATEGIES}, "
                f"got {self.consensus_strategy!r}"
            )
        if self.max_layers is not None and self.max_layers < 1:
            raise ValueError(f"max_layers must be >= 1 or None, got {self.max_layers}")
        if self.max_refinements < 1:
            raise ValueError(f"max_refinements must be >= 1, got {self.max_refinements}")
        if self.max_pattern_pairs < 1:
            raise ValueError(f"max_pattern_pairs must be >= 1, got {self.max_pattern_pairs}")
        if self.explicit_max_size < 2:
            raise ValueError(f"explicit_max_size must be >= 2, got {self.explicit_max_size}")
        if self.explicit_max_configurations < 1:
            raise ValueError(
                f"explicit_max_configurations must be >= 1, got {self.explicit_max_configurations}"
            )
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if not isinstance(self.incremental, bool):
            raise ValueError(f"incremental must be a bool, got {self.incremental!r}")
        if not isinstance(self.trace, bool):
            raise ValueError(f"trace must be a bool, got {self.trace!r}")
        if not isinstance(self.profile, bool):
            raise ValueError(f"profile must be a bool, got {self.profile!r}")
        if self.cache_dir is not None:
            object.__setattr__(self, "cache_dir", str(self.cache_dir))

    def replace(self, **overrides) -> "VerificationOptions":
        """A copy with the given fields replaced (and re-validated)."""
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> dict:
        """Lossless plain-dictionary form (JSON-clean)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "VerificationOptions":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown verification options: {sorted(unknown)}")
        return cls(**data)

    def cache_snapshot(self) -> dict:
        """The fields that may affect verdicts or artifacts.

        Execution-only knobs — worker count, cache location — are excluded:
        a serial and a parallel run of the same check must share cache
        entries (their verdicts and counterexamples are identical).
        """
        snapshot = self.to_dict()
        snapshot.pop("jobs")
        snapshot.pop("incremental")
        snapshot.pop("retry")
        snapshot.pop("cache_dir")
        snapshot.pop("trace")
        snapshot.pop("profile")
        return snapshot
