"""Replica fleet supervision for the sharded routing tier.

A :class:`ReplicaSupervisor` owns N ``repro-verify serve --tcp`` daemon
subprocesses (the *shards* of :mod:`repro.service.router`): it spawns them
with per-shard journal and cache directories, probes their HTTP health
endpoints, restarts dead or unresponsive replicas with exponential backoff,
and propagates the router's graceful drain (SIGTERM) to the whole fleet.

Each replica binds port 0, so its address changes across restarts; every
(re)spawn bumps the replica's ``generation`` and callers holding stale
connections rebuild from :meth:`ReplicaSupervisor.address`.  Because every
shard runs on a durable journal, a SIGKILLed replica loses nothing that was
acknowledged — the supervisor restarts it on the same journal directory and
journal recovery re-enqueues its unfinished jobs.
"""

from __future__ import annotations

import http.client
import json
import logging
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

logger = logging.getLogger(__name__)

#: Backoff before the first restart of a dead replica, doubling per failure.
RESTART_BACKOFF_SECONDS = 0.2
#: Backoff ceiling between restarts of a crash-looping replica.
MAX_RESTART_BACKOFF_SECONDS = 5.0
#: A replica alive this long gets its restart backoff reset.
HEALTHY_RESET_SECONDS = 30.0


class ReplicaError(RuntimeError):
    """A replica could not be spawned or never announced its port."""


def _reap(process: subprocess.Popen | None) -> None:
    """Release a finished replica's pipe fd (the process is already waited)."""
    if process is not None and process.stdout is not None:
        try:
            process.stdout.close()
        except OSError:  # pragma: no cover - close must never raise
            pass


class Replica:
    """One supervised ``serve --tcp`` subprocess (a shard of the fleet).

    All mutable fields (process, address, generation) are guarded by the
    supervisor's lock; readers go through the supervisor's accessors.
    """

    def __init__(self, shard_id: str, index: int, state_dir: Path):
        self.shard_id = shard_id
        self.index = index
        self.state_dir = state_dir
        self.journal_dir = state_dir / "journal"
        self.cache_dir = state_dir / "cache"
        self.log_path = state_dir / "serve.log"
        self.process: subprocess.Popen | None = None
        self.host: str | None = None
        self.port: int | None = None
        self.generation = 0
        self.restarts = 0
        self.spawned_at = 0.0
        self.restart_attempts = 0
        self.restart_at = 0.0  # monotonic time before which no respawn happens
        self.probe_failures = 0
        self.last_ready: dict | None = None  # cached /readyz payload

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None


class ReplicaSupervisor:
    """Spawn, probe, restart and drain a fleet of serve daemons.

    Parameters
    ----------
    count:
        Number of replicas (shard ids ``s0`` … ``s{count-1}``).
    state_dir:
        Fleet state root; shard *i* keeps its journal, cache and log under
        ``state_dir/s{i}/``.  Restarting the supervisor on the same
        directory resumes every shard's journalled backlog.
    workers:
        Dispatcher threads per replica (``serve --workers``).
    serve_args:
        Extra ``repro-verify serve`` arguments appended to every replica's
        command line (e.g. ``("--compact-threshold", "1048576")``).
    """

    def __init__(
        self,
        count: int,
        state_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        workers: int = 1,
        serve_args: tuple[str, ...] = (),
        spawn_timeout: float = 30.0,
        probe_interval: float = 0.5,
        probe_failures: int = 6,
        python: str | None = None,
    ):
        if count < 1:
            raise ValueError("a fleet needs at least one replica")
        self.host = host
        self.workers = int(workers)
        self.serve_args = tuple(serve_args)
        self.spawn_timeout = spawn_timeout
        self.probe_interval = probe_interval
        self.probe_failure_limit = probe_failures
        self.python = python or sys.executable
        self.state_dir = Path(state_dir)
        self._lock = threading.Lock()
        self._replicas: dict[str, Replica] = {}
        for index in range(count):
            shard_id = f"s{index}"
            self._replicas[shard_id] = Replica(shard_id, index, self.state_dir / shard_id)
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None
        self.statistics = {"spawns": 0, "restarts": 0, "probe_kills": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "ReplicaSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.drain()

    @property
    def shard_ids(self) -> list[str]:
        """Stable, ordered shard ids (the rendezvous-hash key space)."""
        return sorted(self._replicas, key=lambda sid: self._replicas[sid].index)

    def start(self) -> None:
        """Spawn every replica and start the monitor thread."""
        if self._monitor is not None:
            return
        for replica in self._replicas.values():
            self._spawn(replica)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-replica-monitor", daemon=True
        )
        self._monitor.start()

    def address(self, shard_id: str) -> tuple[str, int, int]:
        """The shard's last-announced ``(host, port, generation)``.

        The address may be stale for a beat while a dead replica restarts;
        callers treat a refused connection as "re-read the address and
        retry" (the generation tells them whether it actually changed).
        """
        replica = self._replicas[shard_id]
        with self._lock:
            if replica.port is None:
                raise ReplicaError(f"shard {shard_id!r} has never come up")
            return replica.host, replica.port, replica.generation

    def fleet_status(self) -> dict:
        """Per-shard probe state (for aggregated healthz/readyz/statsz)."""
        status: dict = {}
        with self._lock:
            for shard_id, replica in self._replicas.items():
                process = replica.process
                alive = process is not None and process.poll() is None
                status[shard_id] = {
                    "alive": alive,
                    "pid": replica.pid,
                    "port": replica.port,
                    "generation": replica.generation,
                    "restarts": replica.restarts,
                    "ready": bool(replica.last_ready and replica.last_ready.get("ok")),
                    "pending_jobs": (replica.last_ready or {}).get("pending_jobs", 0),
                }
        return status

    def fleet_pending(self) -> int:
        """Summed pending jobs from the cached readyz probes (best effort)."""
        with self._lock:
            return sum(
                int((replica.last_ready or {}).get("pending_jobs") or 0)
                for replica in self._replicas.values()
            )

    def kill(self, shard_id: str) -> int | None:
        """SIGKILL one replica (chaos injection); the monitor restarts it."""
        replica = self._replicas[shard_id]
        with self._lock:
            process = replica.process
        if process is None or process.poll() is not None:
            return None
        pid = process.pid
        process.kill()
        process.wait(timeout=30)
        _reap(process)
        return pid

    def drain(self, timeout: float = 30.0) -> bool:
        """SIGTERM the whole fleet and wait for graceful exits.

        The monitor stops first so nothing is restarted mid-drain.  Each
        replica runs its own journal-preserving drain on SIGTERM; whatever
        does not exit inside the window is SIGKILLed (still lossless — the
        journal records it).  Returns True iff every replica exited 0.
        """
        self._stopping.set()
        if self._monitor is not None:
            # The monitor can be mid-respawn (blocked reading a fresh
            # replica's announcement); wait it out so nothing spawns after
            # the fleet snapshot below.
            self._monitor.join(timeout=self.spawn_timeout + 5.0)
            self._monitor = None
        deadline = time.monotonic() + timeout
        with self._lock:
            fleet = [replica.process for replica in self._replicas.values()]
        for process in fleet:
            if process is not None and process.poll() is None:
                process.send_signal(signal.SIGTERM)
        graceful = True
        for process in fleet:
            if process is None:
                continue
            budget = max(0.1, deadline - time.monotonic())
            try:
                code = process.wait(timeout=budget)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=30)
                code = -1
            _reap(process)
            graceful = graceful and code == 0
        return graceful

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------

    def _command(self, replica: Replica) -> list[str]:
        return [
            self.python,
            "-m",
            "repro.cli",
            "serve",
            "--tcp",
            f"{self.host}:0",
            "--journal-dir",
            str(replica.journal_dir),
            "--cache-dir",
            str(replica.cache_dir),
            "--workers",
            str(self.workers),
            *self.serve_args,
        ]

    def _spawn(self, replica: Replica) -> None:
        """Start (or restart) one replica and wait for its listening line."""
        replica.state_dir.mkdir(parents=True, exist_ok=True)
        log = open(replica.log_path, "ab")
        try:
            process = subprocess.Popen(
                self._command(replica),
                stdout=subprocess.PIPE,
                stderr=log,
                text=True,
            )
        finally:
            # Popen duplicated the fd (or failed); either way ours can go.
            log.close()
        announced = self._read_announcement(replica, process)
        with self._lock:
            replica.process = process
            replica.host = announced["host"]
            replica.port = announced["port"]
            replica.generation += 1
            replica.spawned_at = time.monotonic()
            replica.probe_failures = 0
            replica.last_ready = None
            self.statistics["spawns"] += 1
        logger.info(
            "shard %s serving on %s:%d (pid %d, generation %d)",
            replica.shard_id,
            announced["host"],
            announced["port"],
            process.pid,
            replica.generation,
        )

    def _read_announcement(self, replica: Replica, process: subprocess.Popen) -> dict:
        """Read the daemon's ``{"type": "listening"}`` line, bounded in time.

        ``readline`` on the pipe has no timeout, so it runs on a helper
        thread joined with the spawn budget; a replica that never announces
        is killed and reported.
        """
        result: dict = {}

        def read() -> None:
            line = process.stdout.readline()
            if line:
                try:
                    result.update(json.loads(line))
                except ValueError:
                    result["error"] = f"unparseable announcement: {line!r}"

        reader = threading.Thread(target=read, name=f"repro-spawn-{replica.shard_id}", daemon=True)
        reader.start()
        reader.join(timeout=self.spawn_timeout)
        if result.get("type") != "listening":
            process.kill()
            process.wait(timeout=30)
            raise ReplicaError(
                f"shard {replica.shard_id!r} did not announce a port within "
                f"{self.spawn_timeout}s (see {replica.log_path}): {result.get('error', result)}"
            )
        return result

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(timeout=self.probe_interval):
            for replica in self._replicas.values():
                if self._stopping.is_set():
                    return
                try:
                    self._check(replica)
                except Exception:  # pragma: no cover - supervision must survive
                    logger.exception("monitoring shard %s failed", replica.shard_id)

    def _check(self, replica: Replica) -> None:
        with self._lock:
            process = replica.process
        if process is None or process.poll() is not None:
            _reap(process)
            self._restart(replica, reason=f"exited {process.poll() if process else 'unspawned'}")
            return
        payload = self._probe(replica)
        with self._lock:
            if payload is None:
                replica.probe_failures += 1
                unresponsive = replica.probe_failures >= self.probe_failure_limit
            else:
                replica.probe_failures = 0
                replica.last_ready = payload
                unresponsive = False
            if time.monotonic() - replica.spawned_at > HEALTHY_RESET_SECONDS:
                replica.restart_attempts = 0
        if unresponsive:
            logger.warning(
                "shard %s failed %d consecutive probes; killing it",
                replica.shard_id,
                self.probe_failure_limit,
            )
            self.statistics["probe_kills"] += 1
            process.kill()
            process.wait(timeout=30)
            _reap(process)
            self._restart(replica, reason="unresponsive")

    def _probe(self, replica: Replica) -> dict | None:
        """One ``GET /readyz`` probe; any HTTP answer means the shard lives.

        A 503 (the shard is draining) still parses — readiness lives in the
        payload's ``ok`` flag — only transport failures count against the
        replica.
        """
        with self._lock:
            host, port = replica.host, replica.port
        if port is None:
            return None
        connection = http.client.HTTPConnection(host, port, timeout=5.0)
        try:
            connection.request("GET", "/readyz")
            response = connection.getresponse()
            body = response.read()
            return json.loads(body)
        except (OSError, ValueError, http.client.HTTPException):
            return None
        finally:
            connection.close()

    def _restart(self, replica: Replica, reason: str) -> None:
        """Respawn a dead replica after its (exponential) backoff.

        Called once per monitor tick while the replica is down: the first
        tick schedules the respawn ``backoff`` seconds out, later ticks wait
        for the deadline, and the tick that reaches it spawns.
        """
        now = time.monotonic()
        if replica.restart_at == 0.0:
            backoff = min(
                MAX_RESTART_BACKOFF_SECONDS,
                RESTART_BACKOFF_SECONDS * 2**replica.restart_attempts,
            )
            replica.restart_attempts += 1
            replica.restart_at = now + backoff
            logger.warning(
                "shard %s died (%s); restarting on its journal in %.1fs (attempt %d)",
                replica.shard_id,
                reason,
                backoff,
                replica.restart_attempts,
            )
            return
        if now < replica.restart_at:
            return
        try:
            self._spawn(replica)
        except ReplicaError:
            replica.restart_at = 0.0  # reschedule with a longer backoff
            logger.exception("shard %s failed to restart", replica.shard_id)
            return
        with self._lock:
            replica.restart_at = 0.0
            replica.restarts += 1
            self.statistics["restarts"] += 1
