"""The job-oriented service API: submit, stream events, prioritise, cancel.

Run with::

    PYTHONPATH=src python examples/service_jobs.py

Demonstrates the asynchronous surface behind ``Verifier.check``: jobs are
submitted without blocking, scheduled priority-first over one shared worker
pool, observed through the typed progress-event stream, and cancelled
cooperatively.
"""

from __future__ import annotations

from repro.protocols.library import broadcast_protocol, majority_protocol, remainder_protocol
from repro.service import VerificationService
from repro.service.events import describe_event


def main() -> None:
    with VerificationService() as service:
        # Submit three jobs at different priorities; the highest runs first.
        urgent = service.submit(
            majority_protocol(),
            properties=["ws3"],
            priority=10,
            subscriber=lambda event: print(describe_event(event)),
        )
        background = service.submit(broadcast_protocol(), properties=["ws3"], priority=1)
        doomed = service.submit(remainder_protocol([1], 3, 1), properties=["ws3"], priority=0)

        # Cancel the lowest-priority job before it starts: it finishes as
        # "cancelled" without ever touching a worker.
        doomed.cancel()

        urgent.wait()
        report = urgent.result()
        print(f"\n{report.summary()}\n")

        # The event trail travels inside the report's statistics, so it
        # survives serialisation and the result cache.
        trail = [entry["event"] for entry in report.statistics["events"]]
        print("event trail of the urgent job:", " -> ".join(trail))

        background.wait()
        doomed.wait()
        print(
            f"background job: {background.status().value}, "
            f"cancelled job: {doomed.status().value}"
        )
        print("service statistics:", service.statistics)


if __name__ == "__main__":
    main()
