"""Incremental (delta-aware) simplification over scoped constraint systems.

The CEGAR loops of the verification layer pose hundreds of closely-related
queries per protocol: one solver scope per pattern pair / layer bound, each
differing from a stable base by a handful of constraints.  Before this
module the per-scope block was rebuilt, re-simplified and re-asserted from
scratch — quadratic in the number of refinements, and the dominant cost of
the hot bench rows.  This module provides the pieces that make scopes true
deltas:

* :func:`incremental_enabled` / :func:`resolve_incremental` — the process
  default (the ``REPRO_INCREMENTAL`` environment variable; ``0`` restores
  the rebuild-per-scope behaviour) and the per-call override threaded from
  :class:`repro.api.options.VerificationOptions`;
* :class:`SimplifyIndex` — a persistent duplicate/subsumption index with an
  undo trail, so delta constraints are checked against everything already
  asserted in O(1) instead of a full re-pass over the whole system;
* :class:`ScopedSimplifier` — couples a scoped
  :class:`~repro.constraints.ir.ConstraintSystem` with the index: the base
  is simplified once (through the content-hash cache), and each scope's
  delta is normalised alone — constant folding, optional bound tightening,
  dedup and subsumption against the index — with per-scope savings stats;
* :func:`incremental_statistics` — process-wide counters (scopes pushed and
  popped, delta constraints simplified, full re-simplifications avoided,
  learned cores retained across pops) surfaced through the ``stats`` serve
  op, ``GET /statsz`` and the bench snapshot.

Soundness invariants (asserted by the property-based tests):

* **pop never leaks**: after :meth:`ScopedSimplifier.pop`, both the system
  and the index are byte-identical to their state at the matching push;
* **delta == from-scratch**: at every point of a push/add/tighten/pop
  trace, the scoped system is equivalent (same ``evaluate`` on every
  assignment, same solver verdict) to from-scratch simplification of the
  flattened system — the delta pass only ever drops constraints *implied*
  by still-active ones.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.constraints.ir import ConstraintSystem
from repro.constraints.simplify import SimplifyStats, _single_variable_bound, fold_constants
from repro.constraints.simplify_cache import simplify_system_cached
from repro.obs.metrics import REGISTRY
from repro.smtlite.formula import And, Atom, BoolConst, Formula

#: The escape hatch: ``REPRO_INCREMENTAL=0`` restores rebuild-per-scope.
INCREMENTAL_ENV = "REPRO_INCREMENTAL"


def incremental_enabled() -> bool:
    """The process-wide default, from ``REPRO_INCREMENTAL`` (on unless ``0``)."""
    return os.environ.get(INCREMENTAL_ENV, "1").strip().lower() not in ("0", "false", "off")


def resolve_incremental(flag: bool | None) -> bool:
    """A per-call override (``None`` defers to the environment default)."""
    return incremental_enabled() if flag is None else bool(flag)


# ----------------------------------------------------------------------
# Process-wide incremental counters (one registry metric, event-labelled)
# ----------------------------------------------------------------------

#: Every event the scoped-delta machinery reports.  The snapshot always
#: materialises all of them (zeros included) so diffs between runs — and
#: between shards in the router's scatter-gather — stay shape-stable.
COUNTER_NAMES = (
    "scopes_pushed",
    "scopes_popped",
    "delta_constraints_simplified",
    "delta_constraints_dropped",
    "full_resimplifications_avoided",
    "base_simplifications",
    "cuts_promoted_to_base",
    "cores_learned",
    "cores_retained_across_pops",
    "pops_with_live_cores",
)

_METRIC = REGISTRY.counter(
    "repro_incremental_events_total",
    "Incremental constraint-IR events (scoped deltas, cut promotion, learned cores)",
)


def bump(counter: str, amount: int = 1) -> None:
    """Increment one process-wide incremental counter (thread-safe).

    A thin shim over the observability registry: the counter lives in
    :data:`repro.obs.metrics.REGISTRY` as
    ``repro_incremental_events_total{event=...}`` and is scraped through
    ``GET /metricsz``; this function (and :func:`incremental_statistics`
    below) keep the historical call surface for the stats op, the router
    scatter-gather and the bench snapshot.
    """
    _METRIC.inc(amount, event=counter)


def incremental_statistics() -> dict:
    """A snapshot of the process-wide incremental counters.

    ``core_retention_rate`` is derived: learned cores surviving pops per
    core learned — the fleet-operator signal the router's per-shard stats
    aggregation surfaces (a shard whose rate collapses is rebuilding state
    it should be reusing).
    """
    snapshot = {name: int(_METRIC.value(event=name)) for name in COUNTER_NAMES}
    learned = snapshot["cores_learned"]
    snapshot["core_retention_rate"] = (
        round(snapshot["cores_retained_across_pops"] / learned, 4) if learned else None
    )
    snapshot["enabled_default"] = incremental_enabled()
    return snapshot


def reset_incremental_statistics() -> None:
    _METRIC.reset()


# ----------------------------------------------------------------------
# The persistent dedup/subsumption index
# ----------------------------------------------------------------------


class SimplifyIndex:
    """Duplicate and subsumption index over the *active* constraints.

    Mirrors passes 3 and 4 of :func:`repro.constraints.simplify.simplify_system`
    — exact-duplicate elimination plus strongest-constant subsumption among
    atoms sharing a coefficient vector — but online: each candidate is
    checked against the index in O(1) instead of a full O(n²) re-pass over
    base plus delta.  Scoped admissions are recorded on an undo trail, so
    :meth:`pop` restores the index exactly (the invariant the property
    tests check: an identical formula re-admitted after a pop is *not*
    treated as a duplicate of its popped twin).

    The online pass is deliberately one-directional: a delta constraint
    subsumed by an active one is dropped, but an already-asserted weaker
    constraint is not retracted when a stronger delta arrives (retraction
    is not expressible against a solver scope that may outlive this one).
    Keeping an implied constraint preserves equivalence, which is all the
    delta contract promises.
    """

    __slots__ = ("_seen", "_strongest", "_trail")

    #: Sentinel distinguishing "key was absent" from a stored constant.
    _ABSENT = object()

    def __init__(self) -> None:
        self._seen: set[Formula] = set()
        self._strongest: dict[frozenset, int] = {}
        self._trail: list[list[tuple]] = []

    def push(self) -> None:
        self._trail.append([])

    def pop(self) -> None:
        if not self._trail:
            raise RuntimeError("pop() without a matching push()")
        for kind, key, previous in reversed(self._trail.pop()):
            if kind == "seen":
                self._seen.discard(key)
            elif previous is SimplifyIndex._ABSENT:
                self._strongest.pop(key, None)
            else:
                self._strongest[key] = previous

    @property
    def depth(self) -> int:
        return len(self._trail)

    def __len__(self) -> int:
        return len(self._seen)

    def admit(self, formula: Formula) -> str:
        """Try to admit one (folded, non-And) formula into the active set.

        Returns ``"fresh"`` (assert it), ``"duplicate"`` (an identical
        constraint is active) or ``"subsumed"`` (an active atom with the
        same coefficient vector and a stronger constant implies it).
        """
        if formula in self._seen:
            return "duplicate"
        trail = self._trail[-1] if self._trail else None
        if isinstance(formula, Atom):
            key = frozenset(formula.expr.coefficients.items())
            constant = formula.expr.constant
            strongest = self._strongest.get(key, SimplifyIndex._ABSENT)
            if strongest is not SimplifyIndex._ABSENT and strongest >= constant:
                return "subsumed"
            if trail is not None:
                trail.append(("strongest", key, strongest))
            self._strongest[key] = constant
        self._seen.add(formula)
        if trail is not None:
            trail.append(("seen", formula, None))
        return "fresh"


# ----------------------------------------------------------------------
# The scoped simplifier
# ----------------------------------------------------------------------


@dataclass
class ScopeSavings:
    """Per-scope accounting of what the delta pass saved."""

    depth: int
    delta_in: int = 0
    admitted: int = 0
    folded: int = 0
    duplicates: int = 0
    subsumed: int = 0
    tightened: int = 0

    def to_dict(self) -> dict:
        return {
            "depth": self.depth,
            "delta_in": self.delta_in,
            "admitted": self.admitted,
            "folded": self.folded,
            "duplicates": self.duplicates,
            "subsumed": self.subsumed,
            "tightened": self.tightened,
        }


class ScopedSimplifier:
    """Incremental simplification of one scoped constraint system.

    The base system is simplified once (through the content-hash cache) and
    seeds the persistent :class:`SimplifyIndex`; every scope's delta is then
    normalised *alone* against that index.  ``self.system`` always holds the
    active scoped system — base plus the admitted deltas of the open scopes
    — so flattened equivalence can be checked (and asserted by tests) at any
    point of a trace.

    ``tighten_bounds`` controls what happens to single-variable delta atoms:
    with ``True`` they become scoped bound tightenings
    (:meth:`ConstraintSystem.tighten`, undone on pop); the verification
    loops keep it ``False`` because solver scopes cannot retract bounds.
    """

    def __init__(
        self,
        base: ConstraintSystem,
        tighten_bounds: bool = False,
        stats: SimplifyStats | None = None,
    ):
        self.tighten_bounds = tighten_bounds
        self.stats = stats if stats is not None else SimplifyStats()
        self.system = simplify_system_cached(
            base, tighten_bounds=tighten_bounds, simplifier=self.stats
        )
        self.index = SimplifyIndex()
        for formula in self.system.constraints:
            self.index.admit(formula)
        self.scope_savings: list[ScopeSavings] = []
        self._savings_stack: list[ScopeSavings] = []
        bump("base_simplifications")

    @property
    def depth(self) -> int:
        return self.system.scope_depth

    def push(self) -> None:
        self.system.push_scope()
        self.index.push()
        self._savings_stack.append(ScopeSavings(depth=self.depth))
        bump("scopes_pushed")

    def pop(self) -> None:
        self.system.pop_scope()
        self.index.pop()
        savings = self._savings_stack.pop()
        self.scope_savings.append(savings)
        bump("scopes_popped")
        bump("full_resimplifications_avoided")

    def declare(self, variable: str, lower: int | None = 0, upper: int | None = None) -> None:
        """Declare a delta variable *unscoped* (mirrors solver semantics).

        Solver backends do not retract variable declarations on pop, so
        delta-system bounds (e.g. the fresh existential variables of a
        compiled predicate) are declared at base level here too — the
        declared domain must match what the solver believes after any
        number of pops.
        """
        frame = self.system._scopes
        if frame:
            saved, self.system._scopes = frame, []
            try:
                self.system.declare(variable, lower, upper)
            finally:
                self.system._scopes = saved
        else:
            self.system.declare(variable, lower, upper)

    def add_delta(self, *formulas: Formula) -> list[Formula]:
        """Normalise a delta against the base and admit the survivors.

        Returns the formulas the caller must assert into its solver —
        folded, conjunction-split, with duplicates and subsumed constraints
        dropped (they are already implied by active assertions) and, when
        ``tighten_bounds`` is on, single-variable atoms turned into scoped
        bound tightenings instead.  A delta folding to FALSE is returned
        as the single FALSE constraint (the system is unsatisfiable in
        this scope).
        """
        savings = self._savings_stack[-1] if self._savings_stack else None
        admitted: list[Formula] = []
        queue: list[Formula] = []
        for formula in formulas:
            folded = fold_constants(formula)
            if isinstance(folded, And):
                queue.extend(folded.operands)
            else:
                queue.append(folded)
        self.stats.constraints_before += len(queue)
        if savings is not None:
            savings.delta_in += len(queue)
        bump("delta_constraints_simplified", len(queue))
        for formula in queue:
            if isinstance(formula, BoolConst):
                if formula.value:
                    self.stats.folded += 1
                    if savings is not None:
                        savings.folded += 1
                    continue
                # FALSE: the scope is unsatisfiable; record and surface it.
                self.stats.collapsed_to_false = True
                self.system.add(formula)
                self.stats.constraints_after += 1
                admitted.append(formula)
                continue
            if self.tighten_bounds and isinstance(formula, Atom):
                decoded = _single_variable_bound(formula)
                if decoded is not None:
                    name, value, is_upper = decoded
                    self.system.tighten(
                        name,
                        lower=None if is_upper else value,
                        upper=value if is_upper else None,
                    )
                    self.stats.bounds_tightened += 1
                    if savings is not None:
                        savings.tightened += 1
                    continue
            verdict = self.index.admit(formula)
            if verdict == "fresh":
                self.system.add(formula)
                self.stats.constraints_after += 1
                admitted.append(formula)
                if savings is not None:
                    savings.admitted += 1
            else:
                if verdict == "duplicate":
                    self.stats.duplicates_removed += 1
                    if savings is not None:
                        savings.duplicates += 1
                else:
                    self.stats.subsumed_removed += 1
                    if savings is not None:
                        savings.subsumed += 1
                bump("delta_constraints_dropped")
        return admitted

    def savings_summary(self) -> dict:
        """Aggregate per-scope savings (for statistics blocks)."""
        closed = self.scope_savings
        return {
            "scopes": len(closed),
            "delta_in": sum(s.delta_in for s in closed),
            "admitted": sum(s.admitted for s in closed),
            "duplicates": sum(s.duplicates for s in closed),
            "subsumed": sum(s.subsumed for s in closed),
            "folded": sum(s.folded for s in closed),
            "tightened": sum(s.tightened for s in closed),
        }
