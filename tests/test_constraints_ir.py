"""Tests for the constraint IR and its simplifier.

The property-based part checks the simplifier's contract on randomly
generated systems: for random integer assignments the simplified system
(bounds + constraints) evaluates exactly like the original, and a solver
reaches the same verdict on both.
"""

from __future__ import annotations

import random

import pytest

from repro.constraints import ConstraintSystem, simplify_system
from repro.constraints.simplify import fold_constants
from repro.smtlite.formula import FALSE, TRUE, Implies, Not, Or, conjunction
from repro.smtlite.solver import Solver, SolverStatus
from repro.smtlite.terms import IntVar, LinearExpr


class TestConstraintSystem:
    def test_declare_groups_and_bounds(self):
        system = ConstraintSystem("s")
        x = system.declare("x", lower=0, upper=5, group="config")
        system.declare("y", group="config")
        system.declare("z", group="flow")
        assert system.group("config") == ("x", "y")
        assert system.group("flow") == ("z",)
        assert system.bound_of("x") == (0, 5)
        assert system.bound_of("unknown") == (0, None)
        assert isinstance(x, LinearExpr)

    def test_add_splits_top_level_conjunctions(self):
        x, y = IntVar("x"), IntVar("y")
        system = ConstraintSystem()
        system.add((x >= 1) & (y >= 2))
        assert len(system) == 2

    def test_evaluate_includes_bounds(self):
        x = IntVar("x")
        system = ConstraintSystem()
        system.declare("x", lower=0, upper=3)
        system.add(x >= 1)
        assert system.evaluate({"x": 2})
        assert not system.evaluate({"x": 0})  # constraint violated
        assert not system.evaluate({"x": 5})  # bound violated
        assert not system.evaluate({"x": -1})

    def test_merge_combines_groups_and_constraints(self):
        first = ConstraintSystem()
        first.declare("a", group="g")
        first.add(IntVar("a") >= 1)
        second = ConstraintSystem()
        second.declare("b", group="g")
        second.add(IntVar("b") >= 2)
        first.merge(second)
        assert first.group("g") == ("a", "b")
        assert len(first) == 2

    def test_assert_into_skips_default_bounds(self):
        system = ConstraintSystem()
        system.declare("x")  # default (0, None)
        system.declare("y", lower=1, upper=4)
        system.add(IntVar("x") + IntVar("y") >= 2)
        solver = Solver()
        system.assert_into(solver)
        # Only the non-default bound lands on the solver.
        assert "y" in solver._bounds and "x" not in solver._bounds
        assert solver.check().status is SolverStatus.SAT


class TestSimplifierUnits:
    def test_constant_folding_drops_true_and_collapses_false(self):
        x = IntVar("x")
        system = ConstraintSystem()
        system.add(TRUE, x >= 1)
        simplified, stats = simplify_system(system)
        assert stats.folded == 1  # the bare TRUE conjunct disappears
        system2 = ConstraintSystem()
        system2.add(Implies(FALSE, x >= 5))
        simplified2, stats2 = simplify_system(system2)
        assert stats2.folded == 1 and len(simplified2) == 0
        system3 = ConstraintSystem()
        system3.add(x >= 1)
        system3.add(FALSE)
        simplified3, stats3 = simplify_system(system3)
        assert stats3.collapsed_to_false
        assert simplified3.constraints == [FALSE]

    def test_fold_constants_preserves_structure(self):
        x, y = IntVar("x"), IntVar("y")
        formula = Implies(x >= 1, Or(y >= 2, Not(TRUE)))
        folded = fold_constants(formula)
        # Constants fold away but the implication shape survives (no NNF).
        assert folded == Implies(x >= 1, y >= 2)

    def test_bound_tightening(self):
        x = IntVar("x")
        system = ConstraintSystem()
        system.declare("x")
        system.add(x <= 7)
        system.add(2 * x <= 9)           # x <= 4
        system.add(-3 * x <= -4)         # x >= 2
        simplified, stats = simplify_system(system)
        assert stats.bounds_tightened == 3
        assert simplified.bounds["x"] == (2, 4)
        assert len(simplified) == 0

    def test_contradictory_bounds_collapse(self):
        x = IntVar("x")
        system = ConstraintSystem()
        system.add(x >= 5)
        system.add(x <= 3)
        simplified, stats = simplify_system(system)
        assert stats.collapsed_to_false
        solver = Solver()
        simplified.assert_into(solver)
        assert solver.check().status is SolverStatus.UNSAT

    def test_tighten_bounds_off_keeps_atoms(self):
        x = IntVar("x")
        system = ConstraintSystem()
        system.add(x <= 7)
        simplified, stats = simplify_system(system, tighten_bounds=False)
        assert stats.bounds_tightened == 0
        assert len(simplified) == 1

    def test_duplicate_elimination(self):
        x, y = IntVar("x"), IntVar("y")
        system = ConstraintSystem()
        system.add(x + y >= 3)
        system.add(x + y >= 3)
        system.add(Implies(x >= 1, y >= 1))
        system.add(Implies(x >= 1, y >= 1))
        simplified, stats = simplify_system(system)
        assert stats.duplicates_removed == 2
        assert len(simplified) == 2

    def test_subsumption_keeps_tightest_constant(self):
        x, y = IntVar("x"), IntVar("y")
        system = ConstraintSystem()
        system.add(x + y <= 5)
        system.add(x + y <= 2)
        simplified, stats = simplify_system(system, tighten_bounds=False)
        assert stats.subsumed_removed == 1
        assert len(simplified) == 1
        # The survivor is the tighter one.
        assert not simplified.evaluate({"x": 2, "y": 1})
        assert simplified.evaluate({"x": 1, "y": 1})


# ----------------------------------------------------------------------
# Property-based: random systems stay satisfiability-equivalent
# ----------------------------------------------------------------------


def _random_atom(rng: random.Random, variables: list[str]):
    terms = [
        (rng.randint(-3, 3), name)
        for name in rng.sample(variables, rng.randint(1, min(3, len(variables))))
    ]
    expr = LinearExpr({name: coefficient for coefficient, name in terms if coefficient != 0})
    constant = rng.randint(-6, 6)
    kind = rng.choice(["<=", ">=", "=="])
    if kind == "<=":
        return expr <= constant
    if kind == ">=":
        return expr >= constant
    return expr.eq(constant)


def _random_formula(rng: random.Random, variables: list[str], depth: int):
    if depth == 0 or rng.random() < 0.4:
        return _random_atom(rng, variables)
    shape = rng.choice(["and", "or", "implies", "not", "const"])
    if shape == "const":
        return rng.choice([TRUE, FALSE])
    if shape == "not":
        return Not(_random_formula(rng, variables, depth - 1))
    if shape == "implies":
        return Implies(
            _random_formula(rng, variables, depth - 1),
            _random_formula(rng, variables, depth - 1),
        )
    children = [_random_formula(rng, variables, depth - 1) for _ in range(rng.randint(2, 3))]
    return conjunction(children) if shape == "and" else Or(*children)


def _random_system(rng: random.Random) -> ConstraintSystem:
    variables = [f"v{index}" for index in range(rng.randint(2, 4))]
    system = ConstraintSystem("random")
    for name in variables:
        lower = rng.choice([0, 0, rng.randint(-4, 2)])
        upper = rng.choice([None, None, rng.randint(3, 9)])
        system.declare(name, lower=lower, upper=upper)
    for _ in range(rng.randint(1, 6)):
        system.add(_random_formula(rng, variables, rng.randint(0, 2)))
    return system


@pytest.mark.parametrize("seed", range(40))
def test_simplified_system_evaluates_identically(seed):
    """Random integer assignments cannot distinguish original and simplified."""
    rng = random.Random(seed)
    system = _random_system(rng)
    for tighten in (True, False):
        simplified, _stats = simplify_system(system, tighten_bounds=tighten)
        names = sorted(system.variables() | simplified.variables())
        for _ in range(60):
            assignment = {name: rng.randint(-8, 12) for name in names}
            assert simplified.evaluate(assignment) == system.evaluate(assignment), (
                f"seed={seed} tighten={tighten} assignment={assignment}"
            )


@pytest.mark.parametrize("seed", range(15))
def test_simplified_system_has_same_solver_verdict(seed):
    """The DPLL(T) solver agrees on sat/unsat before and after simplification."""
    rng = random.Random(1000 + seed)
    system = _random_system(rng)
    verdicts = []
    for candidate in (system, simplify_system(system)[0], simplify_system(system, False)[0]):
        solver = Solver()
        candidate.assert_into(solver)
        # Bounds on variables the solver never sees through constraints must
        # still hold; declare them all explicitly for the verdict check.
        for name in candidate.variables():
            lower, upper = candidate.bound_of(name)
            solver.int_var(name, lower=lower, upper=upper)
        verdicts.append(solver.check().status)
    assert verdicts[0] == verdicts[1] == verdicts[2], f"seed={seed}: {verdicts}"
