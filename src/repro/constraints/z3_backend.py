"""A z3-backed solver behind the backend registry (optional dependency).

The adapter translates the project's formula AST
(:mod:`repro.smtlite.formula`: atoms ``expr <= 0`` over
:class:`~repro.smtlite.terms.LinearExpr`, boolean connectives, boolean
variables) into z3 terms and exposes z3's solver through the
:class:`~repro.constraints.backends.ConstraintSolver` protocol — the same
incremental surface (``int_var``/``add``/``push``/``pop``/``check``/
``check_conjunction``) the verification layer already uses, returning the
project's own :class:`~repro.smtlite.solver.SolverResult`/``Model`` objects.

The import is gated exactly like the scipy theory backend: when ``z3`` is
not installed this module still imports cleanly, :func:`z3_available`
returns ``False`` and the backend is simply absent from the registry —
nothing else in the system changes.  When z3 *is* available, the backend is
registered as ``"z3"`` at :mod:`repro.constraints.backends` import time and
the cross-backend parity tests (which enumerate the registry) validate it
with no further wiring.

Variable-bound semantics match the smtlite solver: bounds declared with
``int_var`` are *not* scoped by push/pop and may be re-declared at any time,
so they are attached per :meth:`check` call as assumptions rather than
asserted into the z3 context; every variable that z3 has seen carries the
default natural-number lower bound unless declared otherwise.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

try:  # pragma: no cover - exercised only when z3 is installed
    import z3 as _z3
except ImportError:  # pragma: no cover - the no-z3 path is the CI default
    _z3 = None

from repro.smtlite.formula import And, Atom, BoolConst, BoolVar, Formula, Iff, Implies, Not, Or
from repro.smtlite.solver import Model, SolverResult, SolverStatus


def z3_available() -> bool:
    """True iff the optional z3 dependency is importable."""
    return _z3 is not None


class Z3Solver:
    """z3 behind the :class:`~repro.constraints.backends.ConstraintSolver` protocol."""

    def __init__(self, theory: str = "auto"):
        if _z3 is None:  # pragma: no cover - guarded by the registry gating
            raise ImportError("the z3 backend requires the z3-solver package")
        # ``theory`` selects between this project's theory solvers; z3 is its
        # own theory solver, so the knob is accepted and ignored.
        self.theory = theory
        self._solver = _z3.Solver()
        self._int_vars: dict[str, object] = {}
        self._bool_vars: dict[str, object] = {}
        self._bounds: dict[str, tuple[int | None, int | None]] = {}
        self._scopes = 0
        self.statistics = {"checks": 0, "sat": 0, "unsat": 0, "unknown": 0, "pushes": 0, "pops": 0}

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------

    def _z3_int(self, name: str):
        variable = self._int_vars.get(name)
        if variable is None:
            variable = _z3.Int(name)
            self._int_vars[name] = variable
        return variable

    def _z3_bool(self, name: str):
        variable = self._bool_vars.get(name)
        if variable is None:
            variable = _z3.Bool(name)
            self._bool_vars[name] = variable
        return variable

    def _translate_expr(self, expr):
        terms = [coefficient * self._z3_int(name) for name, coefficient in expr.coefficients.items()]
        terms.append(_z3.IntVal(expr.constant))
        return _z3.Sum(terms)

    def _translate(self, formula: Formula):
        if isinstance(formula, BoolConst):
            return _z3.BoolVal(formula.value)
        if isinstance(formula, Atom):
            return self._translate_expr(formula.expr) <= 0
        if isinstance(formula, BoolVar):
            return self._z3_bool(formula.name)
        if isinstance(formula, Not):
            return _z3.Not(self._translate(formula.operand))
        if isinstance(formula, And):
            return _z3.And([self._translate(operand) for operand in formula.operands])
        if isinstance(formula, Or):
            return _z3.Or([self._translate(operand) for operand in formula.operands])
        if isinstance(formula, Implies):
            return _z3.Implies(
                self._translate(formula.antecedent), self._translate(formula.consequent)
            )
        if isinstance(formula, Iff):
            return self._translate(formula.left) == self._translate(formula.right)
        raise TypeError(f"cannot translate formula {formula!r} to z3")

    def _bound_terms(self) -> list:
        """Bound assumptions for every variable z3 has seen (defaults included)."""
        terms = []
        for name, variable in self._int_vars.items():
            lower, upper = self._bounds.get(name, (0, None))
            if lower is not None:
                terms.append(variable >= lower)
            if upper is not None:
                terms.append(variable <= upper)
        return terms

    # ------------------------------------------------------------------
    # ConstraintSolver protocol
    # ------------------------------------------------------------------

    def int_var(self, name: str, lower: int | None = 0, upper: int | None = None):
        """Declare (or re-declare) an integer variable with bounds."""
        from repro.smtlite.terms import IntVar

        self._bounds[name] = (lower, upper)
        self._z3_int(name)
        return IntVar(name)

    def add(self, *formulas: Formula) -> None:
        for formula in formulas:
            if not isinstance(formula, Formula):
                raise TypeError(f"expected a Formula, got {formula!r}")
            self._solver.add(self._translate(formula))

    def push(self) -> None:
        """Native z3 push — asserted formulas (and learned lemmas z3 chooses
        to keep) are scoped by z3 itself."""
        self._solver.push()
        self._scopes += 1
        self.statistics["pushes"] += 1

    def pop(self) -> None:
        if self._scopes == 0:
            raise RuntimeError("pop() without a matching push()")
        self._solver.pop()
        self._scopes -= 1
        self.statistics["pops"] += 1

    @property
    def num_scopes(self) -> int:
        return self._scopes

    def check(self, assumptions: Sequence[Formula] = ()) -> SolverResult:
        self.statistics["checks"] += 1
        terms = [self._translate(formula) for formula in assumptions]
        terms.extend(self._bound_terms())
        answer = self._solver.check(*terms)
        if answer == _z3.sat:
            self.statistics["sat"] += 1
            return SolverResult(
                SolverStatus.SAT, model=self._model(), statistics=dict(self.statistics)
            )
        if answer == _z3.unsat:
            self.statistics["unsat"] += 1
            return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))
        self.statistics["unknown"] += 1
        return SolverResult(SolverStatus.UNKNOWN, statistics=dict(self.statistics))

    def check_conjunction(self, formulas: Iterable[Formula]) -> SolverResult:
        """Decide a conjunction in isolation (asserted state is ignored)."""
        self.statistics["checks"] += 1
        solver = _z3.Solver()
        for formula in formulas:
            solver.add(self._translate(formula))
        for term in self._bound_terms():
            solver.add(term)
        answer = solver.check()
        if answer == _z3.sat:
            self.statistics["sat"] += 1
            return SolverResult(
                SolverStatus.SAT,
                model=self._model(solver.model()),
                statistics=dict(self.statistics),
            )
        if answer == _z3.unsat:
            self.statistics["unsat"] += 1
            return SolverResult(SolverStatus.UNSAT, statistics=dict(self.statistics))
        self.statistics["unknown"] += 1
        return SolverResult(SolverStatus.UNKNOWN, statistics=dict(self.statistics))

    # ------------------------------------------------------------------
    # Model extraction
    # ------------------------------------------------------------------

    def _model(self, z3_model=None) -> Model:
        model = self._solver.model() if z3_model is None else z3_model
        ints = {}
        for name, variable in self._int_vars.items():
            value = model.eval(variable, model_completion=False)
            if _z3.is_int_value(value):
                ints[name] = value.as_long()
            else:
                # Unconstrained variable: any in-bounds value satisfies; pick
                # the lower bound (matching the smtlite model completion).
                lower, upper = self._bounds.get(name, (0, None))
                if lower is not None:
                    ints[name] = int(lower)
                elif upper is not None and upper < 0:
                    ints[name] = int(upper)
                else:
                    ints[name] = 0
        bools = {}
        for name, variable in self._bool_vars.items():
            value = model.eval(variable, model_completion=False)
            bools[name] = bool(_z3.is_true(value))
        return Model(ints, bools)


class Z3Backend:
    """The registered factory (name ``"z3"``) of :class:`Z3Solver` instances."""

    name = "z3"

    def create_solver(self, theory: str = "auto") -> Z3Solver:
        return Z3Solver(theory=theory)
