"""Explicit-state verification of single inputs (the baseline of prior work).

Before the paper, automatic verification of population protocols meant model
checking the finite configuration graph of *one* input at a time
[6, 8, 21, 25].  This module implements that baseline:

* :func:`verify_single_input` — is the protocol well-specified *for one
  input*, and what value does it compute for it?
* :func:`verify_inputs_up_to` — exhaustively check all inputs up to a given
  population size (what the earlier tools did);
* :func:`check_predicate_on_inputs` — compare the computed values against a
  predicate.

Under the paper's global fairness condition, a fair execution from ``C0``
eventually enters a bottom strongly connected component of the reachability
graph and visits all of its configurations infinitely often.  Hence the
protocol stabilises to ``b`` from ``C0`` iff every bottom SCC reachable from
``C0`` consists of consensus-``b`` configurations only, all for the same ``b``.

The module doubles as a ground-truth oracle for the WS³ verifier in tests,
and as the baseline side of the benchmark ``E-baseline``.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.datatypes.multiset import Multiset
from repro.protocols.protocol import Configuration, PopulationProtocol
from repro.protocols.semantics import (
    enumerate_inputs,
    output_of,
    reachability_graph,
)


@dataclass
class SingleInputResult:
    """Verdict for one input configuration."""

    input_population: Configuration
    well_specified: bool
    output: int | None
    num_configurations: int
    reason: str = ""
    time: float = 0.0


@dataclass
class InputSweepResult:
    """Aggregate verdict over all inputs up to a size bound."""

    results: list[SingleInputResult] = field(default_factory=list)

    @property
    def all_well_specified(self) -> bool:
        return all(result.well_specified for result in self.results)

    @property
    def total_configurations(self) -> int:
        return sum(result.num_configurations for result in self.results)

    @property
    def total_time(self) -> float:
        return sum(result.time for result in self.results)

    def outputs(self) -> dict[Configuration, int | None]:
        return {result.input_population: result.output for result in self.results}


def verify_single_input(
    protocol: PopulationProtocol,
    input_population: Mapping | Multiset,
    max_configurations: int = 200_000,
) -> SingleInputResult:
    """Model-check well-specification for a single input."""
    start = time.perf_counter()
    if not isinstance(input_population, Multiset):
        input_population = Multiset(dict(input_population))
    initial = protocol.initial_configuration(input_population)
    graph = reachability_graph(protocol, initial, max_configurations=max_configurations)
    if not graph.complete:
        return SingleInputResult(
            input_population=input_population,
            well_specified=False,
            output=None,
            num_configurations=len(graph),
            reason=f"state space truncated at {max_configurations} configurations",
            time=time.perf_counter() - start,
        )

    outputs: set[int] = set()
    for component in graph.bottom_sccs():
        for configuration in component:
            value = output_of(protocol, configuration)
            if value is None:
                return SingleInputResult(
                    input_population=input_population,
                    well_specified=False,
                    output=None,
                    num_configurations=len(graph),
                    reason=(
                        "a fair execution keeps visiting the non-consensus configuration "
                        f"{configuration.pretty()}"
                    ),
                    time=time.perf_counter() - start,
                )
            outputs.add(value)
    if len(outputs) != 1:
        return SingleInputResult(
            input_population=input_population,
            well_specified=False,
            output=None,
            num_configurations=len(graph),
            reason=f"different fair executions stabilise to different values {sorted(outputs)}",
            time=time.perf_counter() - start,
        )
    return SingleInputResult(
        input_population=input_population,
        well_specified=True,
        output=next(iter(outputs)),
        num_configurations=len(graph),
        time=time.perf_counter() - start,
    )


def verify_inputs_up_to(
    protocol: PopulationProtocol,
    max_size: int,
    min_size: int = 2,
    max_configurations: int = 200_000,
) -> InputSweepResult:
    """Check every input of size ``min_size .. max_size`` (the prior-work approach)."""
    sweep = InputSweepResult()
    for size in range(min_size, max_size + 1):
        for input_population in enumerate_inputs(protocol, size):
            sweep.results.append(
                verify_single_input(protocol, input_population, max_configurations=max_configurations)
            )
    return sweep


def check_predicate_on_inputs(
    protocol: PopulationProtocol,
    predicate,
    max_size: int,
    min_size: int = 2,
    max_configurations: int = 200_000,
) -> tuple[bool, list[tuple[Configuration, int | None, bool]]]:
    """Compare the protocol's outputs against ``predicate`` on all small inputs.

    Returns ``(all_match, mismatches)`` where each mismatch is a triple
    ``(input, computed_output, expected)``.
    """
    mismatches: list[tuple[Configuration, int | None, bool]] = []
    sweep = verify_inputs_up_to(
        protocol, max_size, min_size=min_size, max_configurations=max_configurations
    )
    for result in sweep.results:
        expected = bool(predicate.evaluate(result.input_population))
        computed = result.output
        if not result.well_specified or computed is None or bool(computed) != expected:
            mismatches.append((result.input_population, computed, expected))
    return not mismatches, mismatches
