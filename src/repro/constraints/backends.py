"""Pluggable solver backends behind a single registry.

The verification layer never constructs a concrete solver any more: it asks
the registry for one (:func:`create_solver`), names travel through
:class:`~repro.api.options.VerificationOptions` / the CLI ``--backend``
flag / the engine's subproblem envelopes, and new backends (a z3 adapter,
say) plug in with :func:`register_backend` without touching a property
check.

Three backends ship by default:

``smtlite``
    The lazy DPLL(T) solver of :mod:`repro.smtlite.solver` — CNF + CDCL SAT
    engine + theory checks on demand.  The right choice for systems with
    real boolean structure (the monolithic StrongConsensus encoding, the
    Appendix D.1 partition search).
``scipy-ilp``
    The direct-ILP loop of :mod:`repro.constraints.direct`: the few
    disjunctions of a pattern-factored system are split combinatorially and
    each case goes straight to integer feasibility (HiGHS MILP via scipy
    when available, the exact branch-and-bound otherwise).  Falls back to a
    DPLL(T) mirror if the case product outgrows its budget, so verdicts
    never depend on the budget.
``portfolio``
    A cheapest-first race: a tightly budgeted direct-ILP attempt answers
    the near-conjunctive queries immediately, and anything structurally
    heavier is handed to a persistent DPLL(T) solver.  (The two runners
    share each query sequentially rather than on threads — both are pure
    Python, so a wall-clock race under the GIL would only add overhead;
    under the parallel engine each worker process races its own pair.)

Every backend returns objects implementing the :class:`ConstraintSolver`
protocol, which is exactly the incremental surface the verification layer
uses; parity across backends is asserted by the cross-backend tests.

Graceful degradation.  :func:`create_solver` wraps every solver in a
:class:`ResilientSolver`: a backend crashing mid-check (a segfaulting
native library, an injected fault) *demotes* that backend for the rest of
the process and the crashed query — together with the solver's entire
assertion state, replayed from an operation log — moves to the next backend
of :data:`FALLBACK_CHAIN`.  Formulas and linear expressions are
solver-agnostic symbolic objects, so the replay reproduces the exact
constraint store and the fallback verdict is the verdict.  Demotions are
session-wide (new solvers skip demoted backends), observable through
:func:`demoted_backends` / :func:`health_statistics`, reported once per
demotion as a ``backend_degraded`` progress event, and reversible with
:func:`reset_backend_health`.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from typing import Protocol, runtime_checkable

from repro.constraints.direct import CaseBudgetExceeded, DirectILPSolver
from repro.obs import trace
from repro.obs.metrics import REGISTRY
from repro.smtlite.formula import Formula
from repro.smtlite.solver import Solver, SolverResult, SolverStatus
from repro.smtlite.terms import LinearExpr


@runtime_checkable
class ConstraintSolver(Protocol):
    """The incremental solver surface the verification layer relies on."""

    statistics: dict

    def int_var(
        self, name: str, lower: int | None = 0, upper: int | None = None
    ) -> LinearExpr: ...

    def add(self, *formulas: Formula) -> None: ...

    def push(self) -> None: ...

    def pop(self) -> None: ...

    def check(self, assumptions: Sequence[Formula] = ()) -> SolverResult: ...

    def check_conjunction(self, formulas: Iterable[Formula]) -> SolverResult: ...


class SolverBackend(Protocol):
    """A named factory of :class:`ConstraintSolver` instances."""

    name: str

    def create_solver(self, theory: str = "auto") -> ConstraintSolver: ...


# ----------------------------------------------------------------------
# The built-in backends
# ----------------------------------------------------------------------


class SmtliteBackend:
    """The lazy DPLL(T) solver (CNF + CDCL SAT + theory lemmas on demand)."""

    name = "smtlite"

    def create_solver(self, theory: str = "auto") -> ConstraintSolver:
        return Solver(theory=theory)


class ScipyILPBackend:
    """Direct ILP case splitting with a DPLL(T) escape hatch."""

    name = "scipy-ilp"

    def __init__(self, max_cases: int = 512):
        self.max_cases = max_cases

    def create_solver(self, theory: str = "auto") -> ConstraintSolver:
        return DirectILPSolver(theory=theory, max_cases=self.max_cases, fallback=True)


class PortfolioSolver:
    """Cheapest-first structural race between direct ILP and DPLL(T).

    Assertions are mirrored into both runners; each :meth:`check` first
    gives the tightly budgeted direct-ILP runner a shot (it answers the
    near-conjunctive queries of the pattern strategies with a handful of
    feasibility calls) and hands everything heavier to the persistent
    DPLL(T) solver, whose learned lemmas accumulate across the session.
    ``statistics`` records which runner answered each query.
    """

    def __init__(self, theory: str = "auto", direct_max_cases: int = 64):
        self._direct = DirectILPSolver(
            theory=theory, max_cases=direct_max_cases, fallback=False
        )
        self._dpllt = Solver(theory=theory)
        self.statistics = {"checks": 0, "direct_wins": 0, "dpllt_wins": 0}

    def int_var(
        self, name: str, lower: int | None = 0, upper: int | None = None
    ) -> LinearExpr:
        self._dpllt.int_var(name, lower=lower, upper=upper)
        return self._direct.int_var(name, lower=lower, upper=upper)

    def add(self, *formulas: Formula) -> None:
        self._direct.add(*formulas)
        self._dpllt.add(*formulas)

    def push(self) -> None:
        self._direct.push()
        self._dpllt.push()

    def pop(self) -> None:
        self._direct.pop()
        self._dpllt.pop()

    @property
    def num_scopes(self) -> int:
        return self._direct.num_scopes

    def check(self, assumptions: Sequence[Formula] = ()) -> SolverResult:
        self.statistics["checks"] += 1
        try:
            result = self._direct.check(assumptions=assumptions)
        except CaseBudgetExceeded:
            self.statistics["dpllt_wins"] += 1
            return self._dpllt.check(assumptions=assumptions)
        if result.status is SolverStatus.UNKNOWN:
            # Theory budget exhausted on the direct path; give the DPLL(T)
            # runner its shot before reporting UNKNOWN.
            self.statistics["dpllt_wins"] += 1
            return self._dpllt.check(assumptions=assumptions)
        self.statistics["direct_wins"] += 1
        return result

    def check_conjunction(self, formulas: Iterable[Formula]) -> SolverResult:
        return self._direct.check_conjunction(formulas)


class PortfolioBackend:
    """The portfolio runner (direct ILP raced against DPLL(T))."""

    name = "portfolio"

    def __init__(self, direct_max_cases: int = 64):
        self.direct_max_cases = direct_max_cases

    def create_solver(self, theory: str = "auto") -> ConstraintSolver:
        return PortfolioSolver(theory=theory, direct_max_cases=self.direct_max_cases)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend, replace: bool = False) -> SolverBackend:
    """Register a backend under its ``name``; duplicate names need ``replace=True``."""
    name = getattr(backend, "name", "")
    if not name:
        raise ValueError(f"backend {backend!r} must define a name")
    if not replace and name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered (pass replace=True)")
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a registered backend (mainly for tests and plugin teardown)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> SolverBackend:
    """Look up a backend by name; unknown names raise ``ValueError``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown solver backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def available_backends() -> tuple[str, ...]:
    """Sorted names of all registered backends."""
    return tuple(sorted(_REGISTRY))


#: The backend used when nothing is specified anywhere.
DEFAULT_BACKEND = "smtlite"


def resolve_backend_name(name: str | None) -> str:
    """Map ``None`` (and the empty string) to the default backend name.

    The default honours the ``REPRO_BACKEND`` environment variable (the CI
    backend-matrix hook), so the unified API and the deprecated per-property
    shims resolve to the same backend in the same process.
    """
    if name:
        return name
    import os

    return os.environ.get("REPRO_BACKEND") or DEFAULT_BACKEND


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------

#: Where a crashed backend's work moves: each backend names its fallback
#: (``None`` terminates the chain).  Backends registered by plugins default
#: to falling back on ``smtlite``.
FALLBACK_CHAIN: dict[str, str | None] = {
    "z3": "smtlite",
    "portfolio": "smtlite",
    "smtlite": "scipy-ilp",
    "scipy-ilp": None,
}

_HEALTH_LOCK = threading.Lock()
_DEMOTED: dict[str, str] = {}  # backend name -> reason of first crash
_HEALTH_STATS = {"demotions": 0, "failed_checks": 0, "replays": 0}

#: Registry mirrors of the health counters (``GET /metricsz``): the event
#: family plus per-backend demotions, and the solver-check latency/span
#: surface every backend shares (the ResilientSolver wrapper is the one
#: choke point all verification-layer queries pass through).
_HEALTH_EVENTS = REGISTRY.counter(
    "repro_backend_health_events_total",
    "Backend degradation events: demotions, failed checks, state replays",
)
_DEMOTIONS = REGISTRY.counter(
    "repro_backend_demotions_total",
    "Backends demoted for the rest of the process, by backend name",
)
_CHECK_SECONDS = REGISTRY.histogram(
    "repro_solver_check_seconds",
    "Solver check latency through the resilient wrapper, by backend",
)


def _next_healthy(name: str) -> str | None:
    """The first registered, non-demoted backend down ``name``'s chain."""
    seen = {name}
    current = FALLBACK_CHAIN.get(name, DEFAULT_BACKEND)
    while current is not None and current not in seen:
        seen.add(current)
        if current not in _DEMOTED and current in _REGISTRY:
            return current
        current = FALLBACK_CHAIN.get(current)
    return None


def demote_backend(name: str, reason: str) -> str | None:
    """Mark ``name`` crashed for the rest of the process; return its fallback.

    Idempotent: a backend already demoted (by a sibling solver) keeps its
    first recorded reason and is not double counted.  The first demotion of
    each backend emits a ``backend_degraded`` progress event when the
    calling thread is bound to a job.  Returns ``None`` when nothing
    healthy is left down the chain.
    """
    with _HEALTH_LOCK:
        fresh = name not in _DEMOTED
        if fresh:
            _DEMOTED[name] = reason
            _HEALTH_STATS["demotions"] += 1
        fallback = _next_healthy(name)
    if fresh:
        _HEALTH_EVENTS.inc(event="demotions")
        _DEMOTIONS.inc(backend=name)
    if fresh:
        from repro.engine import monitor

        monitor.emit_backend_degraded(name, fallback or "", reason)
    return fallback


def effective_backend(name: str) -> str:
    """Map a requested backend to the one actually serving it.

    Healthy (or unknown — the registry raises its standard error later)
    names pass through; demoted names resolve down the fallback chain.
    """
    with _HEALTH_LOCK:
        if name not in _DEMOTED:
            return name
        fallback = _next_healthy(name)
    if fallback is None:
        raise RuntimeError(
            f"solver backend {name!r} is demoted ({_DEMOTED[name]}) "
            "and no healthy fallback remains"
        )
    return fallback


def demoted_backends() -> dict[str, str]:
    """The demoted backends of this process, with the reason of each."""
    with _HEALTH_LOCK:
        return dict(_DEMOTED)


def reset_backend_health() -> None:
    """Forget all demotions and zero the health counters (tests, REPLs)."""
    with _HEALTH_LOCK:
        _DEMOTED.clear()
        for key in _HEALTH_STATS:
            _HEALTH_STATS[key] = 0


def health_statistics() -> dict:
    """Process-wide degradation counters plus the current demotion map."""
    with _HEALTH_LOCK:
        return {**_HEALTH_STATS, "demoted": dict(_DEMOTED)}


class ResilientSolver:
    """A :class:`ConstraintSolver` that survives its backend crashing.

    Every state-changing operation (``int_var``/``add``/``push``/``pop``)
    is recorded in an operation log before being forwarded.  When a
    ``check`` raises — a genuinely crashed backend, not a
    :class:`~repro.constraints.direct.CaseBudgetExceeded` control-flow
    signal — the backend is demoted process-wide, the log is replayed into
    a fresh solver from the fallback chain (formulas are solver-agnostic
    symbolic objects, so the replayed constraint store is identical) and
    the crashed query is re-asked there.  Callers never see the crash
    unless the whole chain is exhausted.
    """

    def __init__(self, backend: str | None = None, theory: str = "auto"):
        self.requested = resolve_backend_name(backend)
        self.theory = theory
        self._log: list[tuple[str, tuple]] = []
        self.backend_name = effective_backend(self.requested)
        self._solver = get_backend(self.backend_name).create_solver(theory=theory)

    # -- logged state changes ---------------------------------------------

    def int_var(
        self, name: str, lower: int | None = 0, upper: int | None = None
    ) -> LinearExpr:
        self._log.append(("int_var", (name, lower, upper)))
        return self._solver.int_var(name, lower=lower, upper=upper)

    def add(self, *formulas: Formula) -> None:
        self._log.append(("add", formulas))
        self._solver.add(*formulas)

    def push(self) -> None:
        self._log.append(("push", ()))
        self._solver.push()

    def pop(self) -> None:
        self._log.append(("pop", ()))
        self._solver.pop()

    # -- guarded queries ---------------------------------------------------

    def check(self, assumptions: Sequence[Formula] = ()) -> SolverResult:
        return self._guarded(lambda solver: solver.check(assumptions=assumptions))

    def check_conjunction(self, formulas: Iterable[Formula]) -> SolverResult:
        materialized = list(formulas)
        return self._guarded(lambda solver: solver.check_conjunction(materialized))

    def _guarded(self, query):
        from repro.engine.monitor import JobCancelledError
        from repro.testing import faults

        while True:
            try:
                faults.apply_fault(
                    faults.fire("backend.check", backend=self.backend_name),
                    site="backend.check",
                )
                # The one choke point every solver query passes through:
                # a "solver.check" trace span (free when tracing is off)
                # and the per-backend latency histogram.
                started = time.perf_counter()
                with trace.span(
                    "solver.check",
                    backend=self.backend_name,
                    scope_depth=self.num_scopes,
                ) as span:
                    result = query(self._solver)
                    if span is not None:
                        span.attrs["status"] = result.status.name
                _CHECK_SECONDS.observe(
                    time.perf_counter() - started, backend=self.backend_name
                )
                return result
            except (CaseBudgetExceeded, JobCancelledError):
                # Control flow, not a crash: budget escapes are a documented
                # part of the solver surface, cancellation belongs to the job.
                raise
            except Exception as error:
                with _HEALTH_LOCK:
                    _HEALTH_STATS["failed_checks"] += 1
                _HEALTH_EVENTS.inc(event="failed_checks")
                fallback = demote_backend(
                    self.backend_name, f"{type(error).__name__}: {error}"
                )
                if fallback is None:
                    raise
                self._rebuild(fallback)

    def _rebuild(self, name: str) -> None:
        solver = get_backend(name).create_solver(theory=self.theory)
        for op, args in self._log:
            if op == "int_var":
                solver.int_var(args[0], lower=args[1], upper=args[2])
            elif op == "add":
                solver.add(*args)
            elif op == "push":
                solver.push()
            else:
                solver.pop()
        self.backend_name = name
        self._solver = solver
        with _HEALTH_LOCK:
            _HEALTH_STATS["replays"] += 1
        _HEALTH_EVENTS.inc(event="replays")

    # -- delegation --------------------------------------------------------

    @property
    def statistics(self) -> dict:
        return self._solver.statistics

    @property
    def num_scopes(self) -> int:
        return self._solver.num_scopes

    def __getattr__(self, name: str):
        # Backend-specific extras (model extraction helpers, ...) pass through.
        return getattr(self._solver, name)


def create_solver(backend: str | None = None, theory: str = "auto") -> ConstraintSolver:
    """The one place the verification layer obtains solvers from.

    The returned solver is wrapped for graceful degradation (see
    :class:`ResilientSolver`): a backend crash demotes the backend and the
    query continues on the fallback chain.
    """
    return ResilientSolver(backend=backend, theory=theory)


for _backend in (SmtliteBackend(), ScipyILPBackend(), PortfolioBackend()):
    register_backend(_backend)
del _backend

# The z3 adapter is registered only when its optional dependency imports —
# gated exactly like the scipy theory backend.  With z3 absent, "z3" is
# simply not an available backend name (VerificationOptions rejects it with
# the standard unknown-backend message); with z3 present, the cross-backend
# parity tests pick it up automatically.
from repro.constraints.z3_backend import Z3Backend, z3_available  # noqa: E402

if z3_available():  # pragma: no cover - depends on the optional dependency
    register_backend(Z3Backend())
