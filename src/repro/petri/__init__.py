"""A Petri-net substrate.

Population protocols are essentially conservative Petri nets, and all the
machinery the paper builds on — flow (state) equations, traps and siphons,
the EXPSPACE-hardness of the general well-specification problem
(Proposition 3) — comes from Petri-net theory.  This subpackage provides a
small but complete Petri-net library:

* nets, markings and the firing rule (:mod:`repro.petri.net`),
* reachability-graph exploration for bounded instances
  (:mod:`repro.petri.reachability`),
* structural analysis: incidence matrices, place invariants, traps and
  siphons (:mod:`repro.petri.analysis`, :mod:`repro.petri.traps_siphons`),
* the normal form used in the proof of Proposition 3 and net reversal
  (:mod:`repro.petri.normal_form`),
* conversions between population protocols and Petri nets, including the
  reduction from the Petri-net reachability problem to WS² membership
  (:mod:`repro.petri.protocol_conversion`).
"""

from repro.petri.net import Marking, PetriNet, PetriNetError, PetriTransition
from repro.petri.protocol_conversion import (
    petri_net_from_protocol,
    protocol_from_reachability_instance,
)

__all__ = [
    "PetriNet",
    "PetriTransition",
    "Marking",
    "PetriNetError",
    "petri_net_from_protocol",
    "protocol_from_reachability_instance",
]
