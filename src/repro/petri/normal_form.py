"""Normal form for Petri nets (Appendix A, proof of Proposition 3).

A net is in *normal form* if all arc weights are 1 and every transition has
between one and two input places and between one and two output places.  The
proof of Proposition 3 converts an arbitrary net into normal form by
replacing every "wide" transition with a widget that first acquires a global
lock, then consumes the input tokens one by one, then produces the output
tokens one by one, and finally releases the lock — so no two widgets ever
run concurrently and the reachable markings (projected to the original
places, with the lock held) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datatypes.multiset import Multiset
from repro.petri.net import Marking, PetriNet, PetriTransition

LOCK_PLACE = "__lock__"


@dataclass
class NormalFormResult:
    """A normal-form net together with the bookkeeping of the construction."""

    net: PetriNet
    lock_place: str
    auxiliary_places: frozenset
    original_places: frozenset

    def lift_marking(self, marking: Marking) -> Marking:
        """Translate a marking of the original net (adds one token on the lock)."""
        return marking + Multiset({self.lock_place: 1})

    def project_marking(self, marking: Marking) -> Marking:
        """Project a marking of the normal-form net back to the original places."""
        return marking.restrict(self.original_places)

    def is_clean(self, marking: Marking) -> bool:
        """True if no widget is mid-execution (all auxiliary places empty, lock held)."""
        return (
            marking[self.lock_place] == 1
            and all(marking[place] == 0 for place in self.auxiliary_places)
        )


def _is_simple(transition: PetriTransition) -> bool:
    return (
        all(count == 1 for count in transition.pre.values())
        and all(count == 1 for count in transition.post.values())
        and 1 <= transition.pre.size() <= 2
        and 1 <= transition.post.size() <= 2
    )


def to_normal_form(net: PetriNet) -> NormalFormResult:
    """Convert a net to normal form with the lock-widget construction.

    Every transition (even already-simple ones) is made to synchronise on the
    global lock place, so that reachability questions between "clean"
    markings (lock held, no widget running) are preserved exactly.
    """
    places = set(net.places) | {LOCK_PLACE}
    auxiliary: set = set()
    transitions: list[PetriTransition] = []

    for transition in net.transitions:
        pre_tokens = list(transition.pre.elements())
        post_tokens = list(transition.post.elements())
        if _is_simple(transition) and len(pre_tokens) <= 2 and len(post_tokens) <= 2:
            # Simple transitions are kept as they are (they already satisfy
            # the normal form); they do not need the lock.
            transitions.append(transition)
            continue

        # Chain of intermediate places: grab lock, consume inputs one by one,
        # produce outputs one by one, release lock.
        chain_states = []
        total_steps = len(pre_tokens) + len(post_tokens)
        for step in range(1, total_steps):
            chain_place = f"__{transition.name}_step{step}__"
            auxiliary.add(chain_place)
            places.add(chain_place)
            chain_states.append(chain_place)

        previous = LOCK_PLACE
        step_index = 0
        for index, token in enumerate(pre_tokens):
            is_last_step = step_index == total_steps - 1
            target = LOCK_PLACE if is_last_step else chain_states[step_index]
            transitions.append(
                PetriTransition.make(
                    f"{transition.name}_take{index}",
                    {previous: 1, token: 1},
                    {target: 1},
                )
            )
            previous = target
            step_index += 1
        for index, token in enumerate(post_tokens):
            is_last_step = step_index == total_steps - 1
            target = LOCK_PLACE if is_last_step else chain_states[step_index]
            transitions.append(
                PetriTransition.make(
                    f"{transition.name}_put{index}",
                    {previous: 1},
                    {target: 1, token: 1},
                )
            )
            previous = target
            step_index += 1

    normal_net = PetriNet(places, transitions, name=f"{net.name}(normal form)")
    return NormalFormResult(
        net=normal_net,
        lock_place=LOCK_PLACE,
        auxiliary_places=frozenset(auxiliary),
        original_places=frozenset(net.places),
    )
