"""Result and certificate types shared by the verification modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.protocols.protocol import Configuration, OrderedPartition, Transition


@dataclass
class LayerCertificate:
    """Evidence that one layer terminates: a linear ranking function.

    The ranking function assigns a non-negative weight to every state such
    that every non-silent transition of the layer strictly decreases the
    total weight of the configuration; its existence is equivalent to
    condition (a) of Definition 4 for the layer (Proposition 6 via LP
    duality / Farkas' lemma).  ``None`` weights mean the certificate was not
    materialised (the silence check itself is still exact).
    """

    layer_index: int
    transitions: frozenset[Transition]
    ranking: dict | None = None

    def weight_of(self, configuration: Configuration) -> Fraction | None:
        if self.ranking is None:
            return None
        return sum(
            (Fraction(self.ranking.get(state, 0)) * count for state, count in configuration.items()),
            Fraction(0),
        )


@dataclass
class LayeredTerminationCertificate:
    """A verified ordered partition witnessing LayeredTermination."""

    partition: OrderedPartition
    layers: list[LayerCertificate] = field(default_factory=list)
    strategy: str = "unknown"

    @property
    def num_layers(self) -> int:
        return len(self.partition)


@dataclass
class StrongConsensusCounterexample:
    """A witness that StrongConsensus fails (Definition 14).

    Two terminal configurations with different outputs (or one non-consensus
    terminal configuration, in which case they coincide) are potentially
    reachable from the same initial configuration.
    """

    initial: Configuration
    terminal_true: Configuration
    terminal_false: Configuration
    flow_true: dict[Transition, int]
    flow_false: dict[Transition, int]

    def describe(self) -> str:
        return (
            f"from initial configuration {self.initial.pretty()} the protocol can potentially reach "
            f"both {self.terminal_true.pretty()} (output 1) and {self.terminal_false.pretty()} (output 0)"
        )


@dataclass
class RefinementStep:
    """One trap/siphon constraint added by the CEGAR loop of Section 6."""

    kind: str  # "trap" or "siphon"
    states: frozenset
    iteration: int

    def __post_init__(self) -> None:
        if self.kind not in ("trap", "siphon"):
            raise ValueError(f"refinement kind must be 'trap' or 'siphon', got {self.kind!r}")


@dataclass
class CorrectnessCounterexample:
    """A potential execution that ends with the wrong output for its input."""

    input_population: Configuration
    initial: Configuration
    terminal: Configuration
    flow: dict[Transition, int]
    expected_output: int

    def describe(self) -> str:
        return (
            f"input {self.input_population.pretty()} (expected output {self.expected_output}) can "
            f"potentially reach terminal configuration {self.terminal.pretty()} containing states of "
            f"output {1 - self.expected_output}"
        )
