#!/usr/bin/env python3
"""CI chaos test: the verification service survives crashes and fault injection.

Three scenarios, each end to end against real subprocesses:

1. **Fault-free baseline** — a journalled ``repro-verify serve`` daemon runs
   a batch to completion; its lossless batch payload is the reference.
2. **SIGKILL + recovery** — a second journalled daemon is killed with
   ``SIGKILL`` right after the batch submission is acknowledged (so the job
   is journalled but almost certainly unfinished); a third daemon restarted
   on the same journal must resume the job and produce a final payload that
   is byte-identical to the baseline after stripping volatile fields
   (timings, event trails).
3. **Poisoned worker** — a parallel batch runs under a deterministic
   ``REPRO_FAULT_PLAN`` that SIGKILLs the first worker process touching a
   subproblem; the engine's retry policy must absorb the death and the run
   must still exit 0 with the right verdicts.

Exits non-zero with a diagnostic on any violation::

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

SPECS = ["majority", "broadcast", "flock-of-birds:4"]

#: Fields whose values legitimately differ between two runs of the same job.
VOLATILE_KEYS = {"time", "timestamp", "events", "seq"}


def _volatile(key: str) -> bool:
    return key in VOLATILE_KEYS or key.endswith("_time") or key.endswith("_seconds")


def normalize(value):
    """Strip volatile fields (timings, event trails) recursively.

    Everything that remains — verdicts, certificates, counterexamples,
    refinement counts, protocol hashes — must be bit-for-bit reproducible
    between a fault-free run and a crash-recovered one.
    """
    if isinstance(value, dict):
        return {key: normalize(item) for key, item in value.items() if not _volatile(key)}
    if isinstance(value, list):
        return [normalize(item) for item in value]
    return value


def canonical(value) -> str:
    return json.dumps(normalize(value), sort_keys=True, separators=(",", ":"))


def serve_env() -> dict:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env.pop("REPRO_FAULT_PLAN", None)
    return env


def serve_command(journal_dir: str) -> list:
    return [sys.executable, "-m", "repro.cli", "serve", "--journal-dir", journal_dir]


def run_requests(journal_dir: str, requests: list, timeout: float = 600) -> dict:
    """One full serve session; returns the responses keyed by request id."""
    script = "\n".join(json.dumps(request) for request in requests) + "\n"
    proc = subprocess.run(
        serve_command(journal_dir),
        input=script,
        capture_output=True,
        text=True,
        env=serve_env(),
        timeout=timeout,
    )
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        raise RuntimeError(f"serve exited with {proc.returncode}")
    responses = {}
    for line in proc.stdout.splitlines():
        payload = json.loads(line)
        if payload.get("type") == "response" and "id" in payload:
            responses[payload["id"]] = payload
    return responses


def scenario_baseline(journal_dir: str) -> str:
    responses = run_requests(
        journal_dir,
        [
            {"op": "submit", "specs": SPECS, "id": 1},
            {"op": "result", "job": "job-1", "wait": True, "id": 2},
            {"op": "shutdown", "id": 3},
        ],
    )
    result = responses.get(2, {})
    if not result.get("ok") or "batch" not in result:
        raise RuntimeError(f"baseline batch did not complete: {result}")
    return canonical(result["batch"])


def scenario_crash_recovery(journal_dir: str, reference: str) -> list:
    """Kill a daemon right after submission; a restart must finish the job."""
    failures = []
    proc = subprocess.Popen(
        serve_command(journal_dir),
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=serve_env(),
    )
    try:
        proc.stdin.write(json.dumps({"op": "submit", "specs": SPECS, "id": 1}) + "\n")
        proc.stdin.flush()
        # The submit response is written only after the journal append is
        # fsynced, so once we read it the job is durable — kill away.
        acknowledged = json.loads(proc.stdout.readline())
        if not acknowledged.get("ok"):
            failures.append(f"crash-scenario submit failed: {acknowledged}")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
    if proc.returncode == 0:
        failures.append("the SIGKILLed daemon exited 0; the kill did not land")

    responses = run_requests(
        journal_dir,
        [
            {"op": "result", "job": "job-1", "wait": True, "id": 1},
            {"op": "shutdown", "id": 2},
        ],
    )
    result = responses.get(1, {})
    if not result.get("ok") or "batch" not in result:
        failures.append(f"recovered daemon did not serve job-1: {result}")
        return failures
    recovered = canonical(result["batch"])
    if recovered != reference:
        failures.append(
            "recovered batch payload differs from the fault-free baseline "
            f"after normalization:\n  baseline:  {reference[:400]}\n  recovered: {recovered[:400]}"
        )
    return failures


def scenario_poisoned_worker(state_dir: str) -> list:
    """A worker SIGKILLed mid-subproblem must be absorbed by the retry policy."""
    failures = []
    plan = {
        "seed": 7,
        "state_dir": state_dir,
        "faults": [{"site": "worker.solve", "action": "kill", "at": 1}],
    }
    env = serve_env()
    env["REPRO_FAULT_PLAN"] = json.dumps(plan)
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "batch",
            "majority",
            "broadcast",
            "--jobs",
            "2",
            "--no-cache",
            "--json",
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        failures.append(f"poisoned-worker batch exited {proc.returncode}")
        return failures
    payload = json.loads(proc.stdout)
    items = {item["protocol"]: item for item in payload["protocols"]}
    if not items.get("majority", {}).get("is_ws3"):
        failures.append("majority unexpectedly not WS3 under fault injection")
    if not items.get("broadcast", {}).get("is_ws3"):
        failures.append("broadcast unexpectedly not WS3 under fault injection")
    # The fault plan's cross-process counter file proves the kill fired.
    fired = any(os.scandir(state_dir))
    if not fired:
        failures.append("the kill fault never fired (no occurrence counters written)")
    return failures


def main() -> int:
    start = time.perf_counter()
    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        baseline_dir = os.path.join(tmp, "journal-baseline")
        crash_dir = os.path.join(tmp, "journal-crash")
        state_dir = os.path.join(tmp, "fault-state")
        os.makedirs(state_dir)

        try:
            reference = scenario_baseline(baseline_dir)
            print("chaos 1/3: fault-free journalled baseline OK")
        except Exception as error:
            print(f"FAIL: baseline scenario: {error}", file=sys.stderr)
            return 1

        crash_failures = scenario_crash_recovery(crash_dir, reference)
        failures.extend(crash_failures)
        if not crash_failures:
            print("chaos 2/3: SIGKILL + journal recovery OK (byte-identical payload)")

        poison_failures = scenario_poisoned_worker(state_dir)
        failures.extend(poison_failures)
        if not poison_failures:
            print("chaos 3/3: poisoned-worker retry OK")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"chaos smoke OK in {time.perf_counter() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
