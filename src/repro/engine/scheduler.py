"""Process-pool scheduler for verification subproblems.

The scheduler executes :class:`~repro.engine.subproblem.Subproblem` batches
("waves") over a pool of worker processes and returns the results in the
deterministic input order, independent of completion timing.  Coordinators
(the verification modules, the batch front end) drive it wave by wave:
between waves they merge worker discoveries — trap/siphon refinements
learned while solving one pattern pair seed the CEGAR loops of the next
wave — and stop dispatching as soon as a decisive result (a SAT
counterexample, a successful layer partition) arrives, which is the
engine's early-cancellation policy: queued-but-not-started siblings are
cancelled, running siblings are awaited (they are wave peers of similar
cost), and later waves are never dispatched.

``jobs=1`` never creates a pool: subproblems are solved inline in the
coordinator process, so the serial behaviour (and failure modes) of the
pre-engine code are preserved exactly.

A worker process dying mid-subproblem (OOM kill, segfault, ``os._exit``)
surfaces as a clean :class:`EngineError` instead of a hang or a bare
``BrokenProcessPool`` traceback.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from collections.abc import Callable, Sequence

from repro.engine import monitor
from repro.engine.subproblem import Subproblem, SubproblemResult
from repro.service.events import SubproblemCompleted, SubproblemDispatched

#: Bumped whenever a change to the engine or the verification layer can
#: alter verdicts, certificates or counterexamples; part of every result
#: cache key, so stale entries from older engines are never served.
#: "5": job-oriented service — envelopes carry job ids, reports embed the
#: progress-event trail in their statistics, AnalysisContext ships the
#: state-delta basis to workers.
ENGINE_VERSION = "5"


class EngineError(RuntimeError):
    """A subproblem could not be completed (worker death, timeout, ...)."""


class VerificationEngine:
    """Schedules verification subproblems over a process pool.

    Parameters
    ----------
    jobs:
        Number of worker processes.  ``1`` solves everything inline in the
        current process (no pool, no pickling) — the exact serial code path.
    wave_timeout:
        Optional per-wave timeout in seconds; a wave that exceeds it raises
        :class:`EngineError` instead of blocking forever.
    """

    def __init__(self, jobs: int = 1, wave_timeout: float | None = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.wave_timeout = wave_timeout
        self._executor: concurrent.futures.ProcessPoolExecutor | None = None
        # Concurrent service jobs share one engine from different dispatcher
        # threads; pool creation must not race (a lost pool would leak its
        # worker processes) and the statistics counters are read-modify-write.
        self._executor_lock = threading.Lock()
        self._statistics_lock = threading.Lock()
        self.statistics = {"waves": 0, "subproblems": 0, "cancelled": 0, "failed_after_stop": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def _count(self, counter: str, amount: int = 1) -> None:
        """Thread-safe statistics increment (dispatcher threads share engines)."""
        with self._statistics_lock:
            self.statistics[counter] += amount

    def _ensure_executor(self) -> concurrent.futures.ProcessPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = concurrent.futures.ProcessPoolExecutor(max_workers=self.jobs)
            return self._executor

    def shutdown(self, kill: bool = False) -> None:
        """Tear down the pool; ``kill`` also terminates the worker processes.

        Plain shutdown lets running tasks finish in the background.  After a
        timeout the wedged worker would keep burning CPU forever, so the
        timeout path passes ``kill=True`` and the workers are terminated
        outright (reaching into the executor's process table is the only way
        ProcessPoolExecutor offers).
        """
        with self._executor_lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            processes = list(getattr(executor, "_processes", {}).values()) if kill else []
            executor.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                process.terminate()

    def __enter__(self) -> "VerificationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_wave(
        self,
        subproblems: Sequence[Subproblem],
        stop_on: Callable[[SubproblemResult], bool] | None = None,
    ) -> list[SubproblemResult | None]:
        """Solve one wave of subproblems; results are in input order.

        With ``stop_on``, dispatch is cut short once a decisive result is
        seen: futures that have not started yet are cancelled and their
        slots are ``None`` (already-running wave peers still complete and
        are reported).  Determinism note: coordinators must not let the
        *content* of later waves depend on which same-wave peers finished
        before the decisive one — the two parallel consumers in the
        verification layer satisfy this by construction (StrongConsensus
        falls back to a serial re-run on SAT; the strategy portfolio ranks
        completed results by priority).
        """
        if not subproblems:
            return []
        # Wave boundary: the one place the engine honours cooperative job
        # cancellation.  A cancelled job never dispatches another wave, so
        # its share of the pool frees up for concurrently scheduled jobs.
        monitor.check_cancelled()
        with self._statistics_lock:
            self.statistics["waves"] += 1
            self.statistics["subproblems"] += len(subproblems)
            engine_wave = self.statistics["waves"]
        # Event streams number waves per *job* (the engine-global counter
        # interleaves concurrent jobs); plain engine use keeps the global.
        wave = monitor.next_wave_index(fallback=engine_wave)
        if not self.parallel:
            return self._run_inline(subproblems, stop_on, wave)

        from repro.engine.worker import solve_subproblem

        executor = self._ensure_executor()
        try:
            futures = [executor.submit(solve_subproblem, sub) for sub in subproblems]
        except RuntimeError as error:  # pool already broken/shut down
            raise EngineError(f"could not dispatch subproblems: {error}") from error
        for subproblem in subproblems:
            self._emit_dispatched(subproblem, wave)

        results: list[SubproblemResult | None] = [None] * len(subproblems)
        pending = dict(enumerate(futures))
        stopping = False
        deadline = None if self.wave_timeout is None else time.monotonic() + self.wave_timeout
        try:
            for position, future in enumerate(futures):
                if stopping and not future.running() and future.cancel():
                    self._count("cancelled")
                    pending.pop(position, None)
                    continue
                remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
                try:
                    results[position] = future.result(timeout=remaining)
                except concurrent.futures.CancelledError as error:
                    # The engine only cancels futures itself once ``stopping``
                    # is set.  Any other cancellation is external — a sibling
                    # job's EngineError tore the shared pool down — and a
                    # silent ``None`` here would read as "skipped after a
                    # decisive result", letting a refinement sweep claim
                    # success over pairs that were never solved.
                    if not stopping:
                        raise EngineError(
                            f"{subproblems[position].label} was cancelled externally "
                            "(the shared worker pool was shut down mid-wave)"
                        ) from error
                    self._count("cancelled")
                except concurrent.futures.TimeoutError as error:
                    if stopping:
                        self._drop_failed_peer(teardown=True)
                        continue
                    self.shutdown(kill=True)
                    raise EngineError(
                        f"wave exceeded its {self.wave_timeout}s budget while waiting on "
                        f"{subproblems[position].label}"
                    ) from error
                except concurrent.futures.process.BrokenProcessPool as error:
                    if stopping:
                        self._drop_failed_peer(teardown=True)
                        continue
                    raise EngineError(
                        f"a worker process died while solving {subproblems[position].label}; "
                        "the remaining subproblems of this wave were abandoned"
                    ) from error
                except Exception:
                    # A peer that failed *after* a decisive result was
                    # collected sits past the serial stopping point — the
                    # serial sweep would never have solved it, so its error
                    # must not mask the verdict.  Failures before any
                    # decisive result propagate, exactly as in serial order.
                    if stopping:
                        self._drop_failed_peer(teardown=False)
                        continue
                    raise
                pending.pop(position, None)
                result = results[position]
                if result is not None:
                    self._emit_completed(subproblems[position], result)
                if stop_on is not None and result is not None and stop_on(result):
                    stopping = True
        except EngineError:
            # The pool is unusable; make sure nothing queued keeps running
            # and that the next wave gets a fresh pool.
            self.shutdown()
            raise
        except BaseException:
            for future in pending.values():
                future.cancel()
            raise
        return results

    def _drop_failed_peer(self, teardown: bool) -> None:
        """Discard a wave peer that failed after a decisive result arrived.

        ``teardown`` tears the pool down (dead worker, hung task — it is no
        longer trustworthy); an ordinary in-task exception leaves the pool
        usable for the next wave.
        """
        self._count("failed_after_stop")
        if teardown:
            self.shutdown(kill=True)

    def _run_inline(
        self,
        subproblems: Sequence[Subproblem],
        stop_on: Callable[[SubproblemResult], bool] | None,
        wave: int,
    ) -> list[SubproblemResult | None]:
        from repro.engine.worker import solve_subproblem

        results: list[SubproblemResult | None] = [None] * len(subproblems)
        for position, subproblem in enumerate(subproblems):
            if position:
                # Inline, each subproblem is its own wave boundary: serial
                # jobs observe cancellation between subproblems.
                monitor.check_cancelled()
            self._emit_dispatched(subproblem, wave)
            results[position] = solve_subproblem(subproblem)
            self._emit_completed(subproblem, results[position])
            if stop_on is not None and stop_on(results[position]):
                self._count("cancelled", len(subproblems) - position - 1)
                break
        return results

    @staticmethod
    def _emit_dispatched(subproblem: Subproblem, wave: int) -> None:
        monitor.emit(
            lambda job_id: SubproblemDispatched(
                job_id=subproblem.job_id or job_id,
                kind=subproblem.kind,
                index=subproblem.index,
                wave=wave,
            )
        )

    @staticmethod
    def _emit_completed(subproblem: Subproblem, result: SubproblemResult) -> None:
        monitor.emit(
            lambda job_id: SubproblemCompleted(
                job_id=subproblem.job_id or job_id,
                kind=subproblem.kind,
                index=subproblem.index,
                verdict=result.verdict,
                time_seconds=float(result.statistics.get("time", 0.0)),
            )
        )


# ----------------------------------------------------------------------
# Coordination helpers shared by the CEGAR-style parallel checks
# ----------------------------------------------------------------------


def wave_plan(total: int, jobs: int) -> list[tuple[int, int]]:
    """Deterministic wave boundaries: a warm-up wave of one, then ``jobs``.

    The first subproblem runs alone because it does the bulk of the
    trap/siphon discovery (exactly as in the serial sweep); every later
    subproblem is then seeded with those refinements instead of
    rediscovering them concurrently, which both avoids duplicated work
    across workers and keeps the merged refinement list essentially the
    serial one.
    """
    if total <= 0:
        return []
    plan = [(0, 1)]
    start = 1
    while start < total:
        end = min(start + max(jobs, 1), total)
        plan.append((start, end))
        start = end
    return plan


def run_refinement_sweep(
    engine: VerificationEngine,
    total: int,
    build_subproblems: Callable[[int, int, list], Sequence[Subproblem]],
    statistics: dict,
) -> tuple[bool, list]:
    """Drive a refinement-sharing sweep over ``total`` CEGAR subproblems.

    ``build_subproblems(start, end, seed_refinements)`` packages one wave of
    the deterministic enumeration.  Workers report the trap/siphon steps
    they discovered; the coordinator merges them in subproblem order
    (deduplicated on ``(kind, states)``) and seeds the next wave with the
    union, so learned refinements cross worker boundaries.  Dispatch stops
    at the first SAT result (queued siblings are cancelled).

    Returns ``(sat_seen, refinements)``; ``statistics`` is updated in place
    and must carry the ``waves`` / ``pattern_pairs`` / ``iterations`` /
    ``solver_instances`` / ``traps`` / ``siphons`` counters.
    """
    refinements: list = []
    seen: set[tuple] = set()
    sat_seen = False
    for wave_start, wave_end in wave_plan(total, engine.jobs):
        results = engine.run_wave(
            build_subproblems(wave_start, wave_end, refinements),
            stop_on=lambda result: result.verdict == "sat",
        )
        statistics["waves"] += 1
        for result in results:
            if result is None:  # cancelled after a decisive sibling
                continue
            statistics["pattern_pairs"] += 1
            statistics["iterations"] += result.statistics.get("iterations", 0)
            if result.verdict == "pruned":
                statistics["pruned_pairs"] = statistics.get("pruned_pairs", 0) + 1
            else:
                statistics["solver_instances"] += 1
            for step in result.data.get("refinements", ()):
                key = (step.kind, step.states)
                if key not in seen:
                    seen.add(key)
                    refinements.append(step)
                    statistics["traps" if step.kind == "trap" else "siphons"] += 1
                    monitor.emit_refinement_found(step.kind, step.states, step.iteration)
            if result.verdict == "sat":
                sat_seen = True
        if sat_seen:
            break
    return sat_seen, refinements
