"""Job records and the public :class:`JobHandle` of the verification service.

A job is one unit of service work — a single-protocol check or a whole
batch.  The internal :class:`Job` record owns the synchronised state (status,
result, error, the event log and its subscribers); the :class:`JobHandle`
wraps it with the non-blocking public surface: ``status()`` / ``result()`` /
``cancel()`` plus the blocking ``wait(timeout=)`` and the ``events()``
iterator.

Event delivery guarantees: events are recorded in emission order, stamped
with a per-job sequence number and a timestamp; subscribers registered after
events were already emitted receive the backlog first (no gaps, no
duplicates), and the iterator API observes exactly the same sequence.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from enum import Enum

from repro.engine.monitor import JobCancelledError
from repro.service.events import JobQueued, ProgressEvent


class JobStatus(str, Enum):
    """Lifecycle of a verification job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return self.value


class _Subscriber:
    """One registered event callback with its delivery cursor."""

    __slots__ = ("callback", "position", "lock")

    def __init__(self, callback: Callable[["ProgressEvent"], None]):
        self.callback = callback
        self.position = 0
        self.lock = threading.Lock()


class JobNotFinished(RuntimeError):
    """``result()`` was called before the job finished (it never blocks)."""


class JobFailedError(RuntimeError):
    """``result()`` was called on a job whose execution raised; chains the cause."""


class Job:
    """Internal, thread-safe record of one submitted job.

    ``payload`` holds whatever the service needs to run the job (protocol or
    protocol list, property names, predicate); the service is the only
    writer of ``status``/``result``/``error``, always through the methods
    here so every transition happens under the condition lock and wakes
    blocked waiters and event iterators.
    """

    def __init__(
        self,
        job_id: str,
        kind: str,
        payload: dict,
        priority: int = 0,
        protocol_name: str = "",
        properties: tuple[str, ...] = (),
    ):
        self.id = job_id
        self.kind = kind
        self.payload = payload
        self.priority = priority
        self.protocol_name = protocol_name
        self.properties = properties
        self.status = JobStatus.QUEUED
        self.result: object | None = None
        self.error: BaseException | None = None
        self.submitted_at = time.time()
        self._condition = threading.Condition()
        self._cancel_requested = False
        self._events: list[ProgressEvent] = []
        self._subscribers: list[_Subscriber] = []
        self.subscriber_errors = 0

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def record_event(self, event: ProgressEvent) -> ProgressEvent:
        """Stamp, append and fan out one event; returns the stamped event."""
        with self._condition:
            stamped = event.stamped(seq=len(self._events), timestamp=time.time())
            self._events.append(stamped)
            subscribers = list(self._subscribers)
            self._condition.notify_all()
        for subscriber in subscribers:
            self._drain(subscriber)
        return stamped

    def subscribe(self, callback: Callable[[ProgressEvent], None]) -> None:
        """Register a callback; the backlog is replayed first (no gaps).

        Delivery is per-subscriber serialised through a position cursor, so
        a subscriber registered mid-run sees seq 0, 1, 2, ... in order even
        while the dispatcher keeps emitting concurrently — never a fresh
        event before (or interleaved with) its backlog.
        """
        subscriber = _Subscriber(callback)
        with self._condition:
            self._subscribers.append(subscriber)
        self._drain(subscriber)

    def _drain(self, subscriber: "_Subscriber") -> None:
        """Deliver every not-yet-delivered event to one subscriber, in order.

        ``subscriber.lock`` serialises concurrent drains (a subscribe-time
        backlog replay racing the dispatcher's fan-out): whoever holds the
        lock delivers, the other drains whatever is left afterwards.  The
        callback runs outside the job condition, so *non-blocking* calls
        back into the job or the service are safe; it usually runs on the
        dispatcher thread driving this very job, so a callback must never
        block on the job's own completion (``wait()``, exhausting
        ``events()``) — that would deadlock the job.
        """
        while True:
            with subscriber.lock:
                with self._condition:
                    if subscriber.position >= len(self._events):
                        return
                    event = self._events[subscriber.position]
                    subscriber.position += 1
                # A broken subscriber must not take the job down; the error
                # count is surfaced in the service statistics.
                try:
                    subscriber.callback(event)
                except Exception:
                    self.subscriber_errors += 1

    def events_snapshot(self) -> list[ProgressEvent]:
        with self._condition:
            return list(self._events)

    def iter_events(self, start: int = 0, timeout: float | None = None) -> Iterator[ProgressEvent]:
        """Yield events from ``start`` onwards until the job has finished.

        The iterator blocks for new events while the job runs and ends once
        the job is finished and the log is drained.  ``timeout`` bounds each
        individual wait; when it expires the iterator stops early.
        """
        position = start
        while True:
            with self._condition:
                while position >= len(self._events) and not self.status.finished:
                    if not self._condition.wait(timeout=timeout):
                        return
                batch = self._events[position:]
                finished = self.status.finished
            for event in batch:
                yield event
            position += len(batch)
            if finished and position >= len(self.events_snapshot()):
                return

    # ------------------------------------------------------------------
    # State transitions (service-side)
    # ------------------------------------------------------------------

    def mark_running(self) -> bool:
        """QUEUED -> RUNNING; False if the job was cancelled while queued."""
        with self._condition:
            if self._cancel_requested or self.status is not JobStatus.QUEUED:
                return False
            self.status = JobStatus.RUNNING
            return True

    def finish(
        self,
        status: JobStatus,
        result=None,
        error: BaseException | None = None,
        final_event: ProgressEvent | None = None,
    ) -> None:
        """Atomically finish the job, recording its terminal event.

        ``final_event`` (the ``job_finished`` event) is appended under the
        same lock that flips the status, and the result's statistics are
        stamped with the complete event trail *before* the result becomes
        visible — so a subscriber reacting to ``job_finished`` (the natural
        fetch-on-completion pattern) observes a finished status and a
        readable result, never ``JobNotFinished``.
        """
        subscribers: list[_Subscriber] = []
        with self._condition:
            if final_event is not None:
                stamped = final_event.stamped(seq=len(self._events), timestamp=time.time())
                self._events.append(stamped)
            statistics = getattr(result, "statistics", None)
            if isinstance(statistics, dict):
                statistics["events"] = [event.to_dict() for event in self._events]
            self.status = status
            self.result = result
            self.error = error
            subscribers = list(self._subscribers)
            self._condition.notify_all()
        for subscriber in subscribers:
            self._drain(subscriber)

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------

    def request_cancel(self) -> bool:
        """Flag the job for cooperative cancellation; False once finished."""
        with self._condition:
            if self.status.finished:
                return False
            self._cancel_requested = True
            return True

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------

    def wait(self, timeout: float | None = None) -> bool:
        with self._condition:
            self._condition.wait_for(lambda: self.status.finished, timeout=timeout)
            return self.status.finished

    def wait_for_event(self, position: int, timeout: float | None = None) -> bool:
        """Block until an event past ``position`` exists (or the job finished).

        The long-poll primitive of the ``events`` op: returns True iff at
        least one event with ``seq >= position`` is available.  A finished
        job never emits again, so the wait also ends (possibly returning
        False) once the job is terminal.
        """
        with self._condition:
            self._condition.wait_for(
                lambda: len(self._events) > position or self.status.finished, timeout=timeout
            )
            return len(self._events) > position


class JobHandle:
    """Public, non-blocking facade over one submitted job.

    Returned by :meth:`~repro.service.service.VerificationService.submit`;
    all methods are safe to call from any thread.
    """

    def __init__(self, job: Job):
        self._job = job

    @property
    def job_id(self) -> str:
        return self._job.id

    @property
    def kind(self) -> str:
        """``"check"`` (one protocol) or ``"batch"`` (many)."""
        return self._job.kind

    @property
    def priority(self) -> int:
        return self._job.priority

    def status(self) -> JobStatus:
        """The job's current lifecycle state (never blocks)."""
        return self._job.status

    def result(self):
        """The job's result — without waiting.

        Returns the :class:`~repro.api.report.VerificationReport` (or
        :class:`~repro.engine.batch.BatchResult` for batch jobs) once the
        job is done.  Raises :class:`JobNotFinished` while the job is still
        queued or running, :class:`~repro.engine.monitor.JobCancelledError`
        for cancelled jobs, and :class:`JobFailedError` (chaining the
        original exception) for failed ones.  Use :meth:`wait` first to
        block.
        """
        status = self._job.status
        if not status.finished:
            raise JobNotFinished(f"job {self.job_id!r} is still {status.value}")
        if status is JobStatus.CANCELLED:
            raise JobCancelledError(self.job_id)
        if status is JobStatus.FAILED:
            raise JobFailedError(f"job {self.job_id!r} failed: {self._job.error}") from self._job.error
        return self._job.result

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes; True iff it did within ``timeout``."""
        return self._job.wait(timeout=timeout)

    def cancel(self) -> bool:
        """Request cooperative cancellation.

        Queued jobs are cancelled before they start; running jobs stop at
        the next checkpoint (engine wave boundary, pattern/strategy
        iteration).  Returns False if the job had already finished.
        """
        return self._job.request_cancel()

    # -- events ------------------------------------------------------------

    def subscribe(self, callback: Callable[[ProgressEvent], None]) -> None:
        """Deliver every event (past and future) of this job to ``callback``."""
        self._job.subscribe(callback)

    def events(self, start: int = 0, timeout: float | None = None) -> Iterator[ProgressEvent]:
        """Iterate the job's event stream; see :meth:`Job.iter_events`."""
        return self._job.iter_events(start=start, timeout=timeout)

    def events_so_far(self) -> list[ProgressEvent]:
        """A snapshot of the events recorded up to now (never blocks)."""
        return self._job.events_snapshot()

    def wait_for_events(self, since: int, timeout: float | None = None) -> bool:
        """Block until an event with ``seq >= since`` exists; see :meth:`Job.wait_for_event`."""
        return self._job.wait_for_event(since, timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - display convenience
        return f"JobHandle({self.job_id!r}, {self._job.status.value})"


def queued_event(job: Job) -> JobQueued:
    """The ``job_queued`` event for a freshly submitted job."""
    return JobQueued(
        job_id=job.id,
        protocol_name=job.protocol_name,
        properties=list(job.properties),
        priority=job.priority,
        kind=job.kind,
    )
