"""Tests for the batch front end (verify_many + result cache integration)."""

from __future__ import annotations

from repro.engine import ResultCache, verify_many
from repro.protocols.library import (
    broadcast_protocol,
    coin_flip_protocol,
    majority_protocol,
)


class TestVerifyMany:
    def test_serial_batch_verdicts(self):
        batch = verify_many([majority_protocol(), coin_flip_protocol()])
        assert [item.is_ws3 for item in batch] == [True, False]
        assert batch.statistics["verified"] == 2
        assert not batch.all_ws3

    def test_parallel_batch_matches_serial(self):
        protocols = [majority_protocol(), broadcast_protocol(), coin_flip_protocol()]
        serial = verify_many(protocols)
        parallel = verify_many([p for p in protocols], jobs=3)
        assert [item.is_ws3 for item in parallel] == [item.is_ws3 for item in serial]
        assert [item.protocol_hash for item in parallel] == [
            item.protocol_hash for item in serial
        ]
        for serial_item, parallel_item in zip(serial, parallel):
            serial_sc = serial_item.report.result_for("strong_consensus")
            parallel_sc = parallel_item.report.result_for("strong_consensus")
            assert serial_sc.verdict == parallel_sc.verdict
            assert serial_sc.counterexample == parallel_sc.counterexample

    def test_second_run_is_served_from_cache(self, tmp_path):
        protocols = [majority_protocol(), broadcast_protocol()]
        cold = verify_many(protocols, cache_dir=tmp_path)
        assert cold.statistics["cache"] == {"hits": 0, "misses": 2, "stores": 2, "corrupt": 0}
        assert not any(item.from_cache for item in cold)

        warm = verify_many(protocols, cache_dir=tmp_path)
        assert warm.statistics["cache"]["hits"] == 2
        assert warm.statistics["verified"] == 0
        assert all(item.from_cache for item in warm)
        assert [item.report for item in warm] == [item.report for item in cold]
        # the warm run does no solving, so it is effectively instant
        assert warm.statistics["time"] < 0.5

    def test_duplicate_protocols_verified_once(self):
        batch = verify_many([broadcast_protocol(), broadcast_protocol()])
        assert batch.statistics["verified"] == 1
        assert batch.statistics["duplicates"] == 1
        assert batch.items[0].report == batch.items[1].report

    def test_shared_cache_object(self, tmp_path):
        cache = ResultCache(tmp_path)
        verify_many([broadcast_protocol()], cache=cache)
        batch = verify_many([broadcast_protocol()], cache=cache)
        assert cache.statistics["hits"] == 1
        assert batch.items[0].from_cache
