"""Cross-backend parity: every library protocol gets the same verdicts
(and equivalent counterexamples) from every registered backend.

"Equivalent" for counterexamples means: both backends report a genuine
witness of the violation (a valid potential-reachability pair with
disagreeing outputs).  The concrete model may differ between backends —
each solver picks its own satisfying assignment — but validity is checked
exactly either way.
"""

from __future__ import annotations

import pytest

from repro.api import VerificationOptions, Verifier
from repro.constraints.backends import available_backends
from repro.protocols.library import (
    broadcast_protocol,
    flock_of_birds_protocol,
    majority_protocol,
    remainder_protocol,
    threshold_protocol,
)
from repro.protocols.library.faulty import (
    coin_flip_protocol,
    oscillating_majority_protocol,
)
from repro.verification.flow import PotentialReachabilityWitness, check_potential_reachability

BACKENDS = tuple(sorted(available_backends()))

#: One small instance per library family of the paper (plus the faulty ones).
FAMILIES = [
    ("threshold", lambda: threshold_protocol([1], 2)),
    ("remainder", lambda: remainder_protocol([1], 3, 1)),
    ("majority", majority_protocol),
    ("flock_of_birds", lambda: flock_of_birds_protocol(3)),
    ("broadcast", broadcast_protocol),
    ("faulty:coin_flip", coin_flip_protocol),
    ("faulty:oscillating_majority", oscillating_majority_protocol),
]


def _reports_by_backend(factory, properties):
    reports = {}
    for backend in BACKENDS:
        protocol = factory()
        with Verifier(VerificationOptions(backend=backend)) as verifier:
            reports[backend] = verifier.check(protocol, properties=properties)
    return reports


@pytest.mark.parametrize("name,factory", FAMILIES, ids=[name for name, _ in FAMILIES])
def test_ws3_verdicts_identical_across_backends(name, factory):
    reports = _reports_by_backend(factory, ["ws3"])
    verdicts = {backend: report.is_ws3 for backend, report in reports.items()}
    assert len(set(verdicts.values())) == 1, f"backends disagree on {name}: {verdicts}"

    # Per-part verdicts must line up too, not just the conjunction.
    parts = {
        backend: [
            (part.property, part.verdict.value)
            for part in report.result_for("ws3").parts
        ]
        for backend, report in reports.items()
    }
    reference = parts[BACKENDS[0]]
    for backend, backend_parts in parts.items():
        assert backend_parts == reference, f"{name}: {backend} parts diverge"


@pytest.mark.parametrize(
    "name,factory",
    # Of the faulty protocols, coin-flip is the one violating StrongConsensus
    # (oscillating-majority fails WS³ through layered termination instead).
    [("faulty:coin_flip", coin_flip_protocol)],
    ids=["faulty:coin_flip"],
)
def test_counterexamples_equivalent_across_backends(name, factory):
    """Every backend produces a *valid* StrongConsensus counterexample."""
    protocol = factory()
    for backend in BACKENDS:
        with Verifier(VerificationOptions(backend=backend)) as verifier:
            report = verifier.check(factory(), properties=["strong_consensus"])
        result = report.result_for("strong_consensus")
        assert not result.holds, f"{backend} missed the {name} violation"
        counterexample = result.counterexample
        assert counterexample is not None

        for terminal, flow in (
            (counterexample.terminal_true, counterexample.flow_true),
            (counterexample.terminal_false, counterexample.flow_false),
        ):
            witness = PotentialReachabilityWitness(
                source=counterexample.initial, target=terminal, flow=dict(flow)
            )
            valid, reason = check_potential_reachability(protocol, witness)
            assert valid, f"{backend} returned an invalid witness for {name}: {reason}"
        outputs_true = {protocol.output_map[state] for state in counterexample.terminal_true.support()}
        outputs_false = {protocol.output_map[state] for state in counterexample.terminal_false.support()}
        # The witness must actually disagree: the "true" side populates an
        # output-1 state and the "false" side an output-0 state.
        assert 1 in outputs_true and 0 in outputs_false


@pytest.mark.parametrize(
    "name,factory",
    [("threshold", lambda: threshold_protocol([1], 2)), ("remainder", lambda: remainder_protocol([1], 3, 1))],
    ids=["threshold", "remainder"],
)
def test_correctness_verdicts_identical_across_backends(name, factory):
    """The predicate-correctness check agrees across backends too."""
    verdicts = {}
    for backend in BACKENDS:
        with Verifier(VerificationOptions(backend=backend)) as verifier:
            report = verifier.check(factory(), properties=["correctness"])
        verdicts[backend] = report.result_for("correctness").verdict.value
    assert set(verdicts.values()) == {"holds"}, verdicts


def test_backend_recorded_in_report_options():
    with Verifier(VerificationOptions(backend="scipy-ilp")) as verifier:
        report = verifier.check(majority_protocol(), properties=["strong_consensus"])
    assert report.options["backend"] == "scipy-ilp"
    assert report.result_for("strong_consensus").statistics["backend"] == "scipy-ilp"


# ----------------------------------------------------------------------
# Incremental-IR parity (PR 9): the scoped-delta CEGAR loops must return
# identical verdicts to rebuild-per-scope mode on every registered backend.
# ----------------------------------------------------------------------

#: Families whose WS³ run exercises all three refinement loops quickly.
INCREMENTAL_FAMILIES = [
    ("threshold", lambda: threshold_protocol([1], 2)),
    ("majority", majority_protocol),
    ("flock_of_birds", lambda: flock_of_birds_protocol(3)),
    ("faulty:coin_flip", coin_flip_protocol),
    ("faulty:oscillating_majority", oscillating_majority_protocol),
]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "name,factory", INCREMENTAL_FAMILIES, ids=[name for name, _ in INCREMENTAL_FAMILIES]
)
def test_incremental_verdicts_identical_per_backend(name, factory, backend):
    """Incrementality on vs off: same WS³ verdict and per-part verdicts."""
    reports = {}
    for incremental in (True, False):
        with Verifier(VerificationOptions(backend=backend, incremental=incremental)) as verifier:
            reports[incremental] = verifier.check(factory(), properties=["ws3"])
    assert reports[True].is_ws3 == reports[False].is_ws3, (
        f"{backend} verdict differs with incrementality on {name}"
    )
    parts = {
        incremental: [
            (part.property, part.verdict.value)
            for part in report.result_for("ws3").parts
        ]
        for incremental, report in reports.items()
    }
    assert parts[True] == parts[False], f"{backend} parts diverge on {name}"


def test_incremental_counterexample_still_valid():
    """A violation found incrementally is a genuine witness."""
    protocol = coin_flip_protocol()
    with Verifier(VerificationOptions(incremental=True)) as verifier:
        report = verifier.check(protocol, properties=["strong_consensus"])
    result = report.result_for("strong_consensus")
    assert not result.holds
    counterexample = result.counterexample
    for terminal, flow in (
        (counterexample.terminal_true, counterexample.flow_true),
        (counterexample.terminal_false, counterexample.flow_false),
    ):
        witness = PotentialReachabilityWitness(
            source=counterexample.initial, target=terminal, flow=dict(flow)
        )
        valid, reason = check_potential_reachability(protocol, witness)
        assert valid, reason


def test_incremental_flag_excluded_from_cache_snapshot():
    """Like jobs, incrementality is execution-only: cache entries are shared."""
    on = VerificationOptions(incremental=True).cache_snapshot()
    off = VerificationOptions(incremental=False).cache_snapshot()
    assert on == off
    assert "incremental" not in on
