"""Benchmark suite reproducing Table 1 of the paper.

The package ``__init__`` exists so the ``from .conftest import ...`` imports
in the benchmark modules resolve under plain rootdir collection
(``python -m pytest`` from the repository root).
"""
