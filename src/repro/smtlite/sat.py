"""A CDCL SAT solver.

This is a compact but complete implementation of conflict-driven clause
learning with the standard ingredients: two-watched-literal propagation,
first-UIP conflict analysis, VSIDS-style variable activities maintained in an
indexed max-heap, phase saving, geometric restarts, LBD-based deletion of
learned clauses, and solving under assumptions.  It is used as the
propositional engine of the DPLL(T) solver in :mod:`repro.smtlite.solver` and
is also usable on its own (see the unit tests, which cross-check it against
brute force on random instances).

Clauses are lists of non-zero integers in the DIMACS convention: a positive
literal ``v`` means "variable v is true", a negative literal ``-v`` means
"variable v is false".

Clauses added through :meth:`SatSolver.add_clause` are *problem* clauses and
are never deleted (the DPLL(T) loop relies on blocking clauses being
permanent for termination); only clauses learned internally by conflict
analysis participate in database reduction.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class SatSolver:
    """Conflict-driven clause-learning SAT solver."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[list[int] | None] = []
        self.watches: dict[int, list[int]] = {}
        self.assignment: list[bool | None] = [None]
        self.level: list[int] = [0]
        self.reason: list[int | None] = [None]
        self.activity: list[float] = [0.0]
        self.phase: list[bool] = [False]
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.unsat = False
        self.var_inc = 1.0
        self.var_decay = 0.95
        # Indexed binary max-heap over variable activities (lazy deletion:
        # assigned variables may linger in the heap and are skipped on pop).
        self._heap: list[int] = []
        self._heap_pos: list[int] = [-1]
        # LBD ("glue") of each learned clause, keyed by clause index.
        self._learned_lbd: dict[int, int] = {}
        self._max_learned = 4000
        self.statistics = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "deleted_clauses": 0,
            "db_reductions": 0,
        }

    # ------------------------------------------------------------------
    # Variables and clauses
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a new variable and return its (1-based) index."""
        self.num_vars += 1
        self.assignment.append(None)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.phase.append(False)
        self._heap_pos.append(-1)
        self._heap_insert(self.num_vars)
        return self.num_vars

    def ensure_vars(self, count: int) -> None:
        """Make sure variables ``1..count`` exist."""
        while self.num_vars < count:
            self.new_var()

    def _value(self, literal: int) -> bool | None:
        value = self.assignment[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause.  Returns False if the solver becomes trivially unsat.

        Must be called at decision level 0 (the solver backtracks to level 0
        automatically after each :meth:`solve` call).
        """
        if self.unsat:
            return False
        if self.decision_level() != 0:
            self._cancel_until(0)

        seen: set[int] = set()
        clause: list[int] = []
        for literal in literals:
            literal = int(literal)
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            self.ensure_vars(abs(literal))
            if -literal in seen:
                return True  # tautology
            if literal in seen:
                continue
            value = self._value(literal)
            if value is True and self.level[abs(literal)] == 0:
                return True  # already satisfied at the root level
            if value is False and self.level[abs(literal)] == 0:
                continue  # literal can never help
            seen.add(literal)
            clause.append(literal)

        if not clause:
            self.unsat = True
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self.unsat = True
                return False
            if self._propagate() is not None:
                self.unsat = True
                return False
            return True
        index = len(self.clauses)
        self.clauses.append(clause)
        self._watch(clause[0], index)
        self._watch(clause[1], index)
        return True

    def _watch(self, literal: int, clause_index: int) -> None:
        self.watches.setdefault(literal, []).append(clause_index)

    # ------------------------------------------------------------------
    # Activity heap
    # ------------------------------------------------------------------

    def _heap_insert(self, var: int) -> None:
        if self._heap_pos[var] >= 0:
            return
        self._heap.append(var)
        self._heap_pos[var] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def _sift_up(self, position: int) -> None:
        heap, pos, activity = self._heap, self._heap_pos, self.activity
        var = heap[position]
        key = activity[var]
        while position > 0:
            parent = (position - 1) >> 1
            parent_var = heap[parent]
            if activity[parent_var] >= key:
                break
            heap[position] = parent_var
            pos[parent_var] = position
            position = parent
        heap[position] = var
        pos[var] = position

    def _sift_down(self, position: int) -> None:
        heap, pos, activity = self._heap, self._heap_pos, self.activity
        size = len(heap)
        var = heap[position]
        key = activity[var]
        while True:
            child = 2 * position + 1
            if child >= size:
                break
            right = child + 1
            if right < size and activity[heap[right]] > activity[heap[child]]:
                child = right
            child_var = heap[child]
            if key >= activity[child_var]:
                break
            heap[position] = child_var
            pos[child_var] = position
            position = child
        heap[position] = var
        pos[var] = position

    def _heap_pop_max(self) -> int | None:
        heap, pos = self._heap, self._heap_pos
        while heap:
            top = heap[0]
            last = heap.pop()
            pos[top] = -1
            if heap:
                heap[0] = last
                pos[last] = 0
                self._sift_down(0)
            if self.assignment[top] is None:
                return top
        return None

    # ------------------------------------------------------------------
    # Trail management
    # ------------------------------------------------------------------

    def decision_level(self) -> int:
        return len(self.trail_lim)

    def _enqueue(self, literal: int, reason: int | None) -> bool:
        value = self._value(literal)
        if value is not None:
            return value
        var = abs(literal)
        self.assignment[var] = literal > 0
        self.level[var] = self.decision_level()
        self.reason[var] = reason
        self.phase[var] = literal > 0
        self.trail.append(literal)
        return True

    def _cancel_until(self, target_level: int) -> None:
        if self.decision_level() <= target_level:
            return
        boundary = self.trail_lim[target_level]
        for literal in reversed(self.trail[boundary:]):
            var = abs(literal)
            self.assignment[var] = None
            self.reason[var] = None
            self._heap_insert(var)
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self.qhead = min(self.qhead, len(self.trail))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> list[int] | None:
        """Unit propagation.  Returns a conflicting clause or None."""
        while self.qhead < len(self.trail):
            literal = self.trail[self.qhead]
            self.qhead += 1
            false_literal = -literal
            watch_list = self.watches.get(false_literal, [])
            new_watch_list: list[int] = []
            conflict: list[int] | None = None
            index_position = 0
            while index_position < len(watch_list):
                clause_index = watch_list[index_position]
                index_position += 1
                clause = self.clauses[clause_index]
                if clause is None:
                    continue  # deleted learned clause; drop the watcher
                # Ensure the false literal is at position 1.
                if clause[0] == false_literal:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    new_watch_list.append(clause_index)
                    continue
                # Look for a replacement watch.
                replaced = False
                for position in range(2, len(clause)):
                    candidate = clause[position]
                    if self._value(candidate) is not False:
                        clause[1], clause[position] = clause[position], clause[1]
                        self._watch(candidate, clause_index)
                        replaced = True
                        break
                if replaced:
                    continue
                new_watch_list.append(clause_index)
                if self._value(first) is False:
                    # Conflict: keep the remaining watchers and stop.
                    new_watch_list.extend(watch_list[index_position:])
                    conflict = clause
                    break
                self.statistics["propagations"] += 1
                self._enqueue(first, clause_index)
            self.watches[false_literal] = new_watch_list
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            # Uniform rescale preserves the heap order, so no rebuild needed.
            for index in range(1, self.num_vars + 1):
                self.activity[index] *= 1e-100
            self.var_inc *= 1e-100
        if self._heap_pos[var] >= 0:
            self._sift_up(self._heap_pos[var])

    def _decay_activities(self) -> None:
        self.var_inc /= self.var_decay

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP conflict analysis.

        Returns the learned clause (with the asserting literal first) and the
        backjump level.
        """
        learned: list[int] = []
        seen: set[int] = set()
        counter = 0
        literal: int | None = None
        clause: Sequence[int] = conflict
        trail_index = len(self.trail) - 1
        current_level = self.decision_level()

        while True:
            for clause_literal in clause:
                # When resolving with the reason of `literal`, skip the
                # asserted literal itself (it cancels against its negation).
                if literal is not None and clause_literal == literal:
                    continue
                var = abs(clause_literal)
                if var in seen or self.level[var] == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self.level[var] == current_level:
                    counter += 1
                else:
                    learned.append(clause_literal)
            # Find the next literal of the current level on the trail.
            while abs(self.trail[trail_index]) not in seen:
                trail_index -= 1
            literal = self.trail[trail_index]
            trail_index -= 1
            var = abs(literal)
            seen.discard(var)
            counter -= 1
            if counter == 0:
                break
            reason_index = self.reason[var]
            clause = self.clauses[reason_index] if reason_index is not None else []
        learned.insert(0, -literal)

        if len(learned) == 1:
            backjump_level = 0
        else:
            # Second-highest decision level in the learned clause.
            backjump_level = 0
            best_position = 1
            for position in range(1, len(learned)):
                var_level = self.level[abs(learned[position])]
                if var_level > backjump_level:
                    backjump_level = var_level
                    best_position = position
            learned[1], learned[best_position] = learned[best_position], learned[1]
        return learned, backjump_level

    def _record_learned(self, learned: list[int]) -> None:
        if len(learned) == 1:
            self._enqueue(learned[0], None)
            return
        index = len(self.clauses)
        self.clauses.append(learned)
        self._watch(learned[0], index)
        self._watch(learned[1], index)
        # LBD: the asserting literal is not yet (re-)assigned, so its stored
        # level is stale — it will be enqueued at the current (backjump)
        # level, which is what counts.
        levels = {self.level[abs(literal)] for literal in learned[1:]}
        levels.add(self.decision_level())
        self._learned_lbd[index] = len(levels)
        self._enqueue(learned[0], index)

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------

    def _reduce_learned(self) -> None:
        """Drop the worst half of the learned clauses (highest LBD first).

        Must be called at decision level 0.  Clauses that are the reason of a
        root-level assignment ("locked") and glue clauses (LBD <= 2) are kept.
        """
        locked = {self.reason[abs(literal)] for literal in self.trail}
        candidates = [
            (lbd, len(self.clauses[index]), index)
            for index, lbd in self._learned_lbd.items()
            if lbd > 2 and index not in locked
        ]
        candidates.sort(reverse=True)
        for _, _, index in candidates[: len(candidates) // 2]:
            self.clauses[index] = None
            del self._learned_lbd[index]
            self.statistics["deleted_clauses"] += 1
        self.statistics["db_reductions"] += 1
        self._max_learned = int(self._max_learned * 1.2)

    # ------------------------------------------------------------------
    # Main solving loop
    # ------------------------------------------------------------------

    def solve(
        self, max_conflicts: int | None = None, assumptions: Sequence[int] = ()
    ) -> bool | None:
        """Decide satisfiability of the current clause set.

        Returns True (sat), False (unsat), or None if ``max_conflicts`` was
        exhausted.  On True, :attr:`model` holds a satisfying assignment.

        ``assumptions`` is a sequence of literals temporarily assumed true for
        this call only; False then means "unsatisfiable under the
        assumptions" and the solver remains usable (clause database intact).
        """
        if self.unsat:
            return False
        self._cancel_until(0)
        assumptions = [int(literal) for literal in assumptions]
        for literal in assumptions:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            self.ensure_vars(abs(literal))
        if self._propagate() is not None:
            self.unsat = True
            return False

        total_conflicts = 0
        restart_limit = 100
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.statistics["conflicts"] += 1
                total_conflicts += 1
                conflicts_since_restart += 1
                if self.decision_level() == 0:
                    self.unsat = True
                    return False
                if self.decision_level() <= len(assumptions):
                    # The conflict only depends on (a prefix of) the
                    # assumptions: unsat under assumptions, solver intact.
                    self._cancel_until(0)
                    return False
                learned, backjump_level = self._analyze(conflict)
                self._cancel_until(max(backjump_level, 0))
                self._record_learned(learned)
                self._decay_activities()
                if max_conflicts is not None and total_conflicts >= max_conflicts:
                    self._cancel_until(0)
                    return None
                continue

            if conflicts_since_restart >= restart_limit:
                conflicts_since_restart = 0
                restart_limit = int(restart_limit * 1.5)
                self.statistics["restarts"] += 1
                self._cancel_until(0)
                if len(self._learned_lbd) > self._max_learned:
                    self._reduce_learned()
                continue

            if self.decision_level() < len(assumptions):
                # Re-establish the next assumption as a pseudo-decision.
                literal = assumptions[self.decision_level()]
                value = self._value(literal)
                if value is False:
                    self._cancel_until(0)
                    return False
                self.trail_lim.append(len(self.trail))
                if value is None:
                    self._enqueue(literal, None)
                continue

            variable = self._heap_pop_max()
            if variable is None:
                return True
            self.statistics["decisions"] += 1
            self.trail_lim.append(len(self.trail))
            literal = variable if self.phase[variable] else -variable
            self._enqueue(literal, None)

    @property
    def model(self) -> dict[int, bool]:
        """The satisfying assignment found by the last successful :meth:`solve`."""
        return {
            var: bool(self.assignment[var])
            for var in range(1, self.num_vars + 1)
            if self.assignment[var] is not None
        }

    def model_value(self, var: int, default: bool = False) -> bool:
        value = self.assignment[var] if var <= self.num_vars else None
        return default if value is None else value
