"""Correctness of a (well-specified) protocol against a predicate.

Section 6 of the paper describes an extension of the well-specification
check: *given* a protocol that belongs to WS³ and a predicate φ over its
inputs, check that the protocol actually computes φ.  The constraint system
asks for an input ``X`` and a terminal configuration ``C`` potentially
reachable from ``I(X)`` such that ``O(C) ≠ φ(X)``; if no such pair exists
(after trap/siphon refinement) the protocol is correct.

Predicates must offer the small interface implemented by
:mod:`repro.presburger.predicates`:

* ``formula(input_vars)`` — a :class:`repro.smtlite.formula.Formula` saying
  "φ holds for the input whose symbol counts are ``input_vars``";
* ``negation_formula(input_vars)`` — the same for ¬φ;
* ``evaluate(input_population)`` — concrete evaluation (used by tests and by
  the explicit-state baseline).

The predicate's formulas are compiled into the constraint IR
(:func:`repro.presburger.ir.predicate_system`) together with the terminal
pattern block, simplified, and handed to whichever solver backend the
registry provides; like the StrongConsensus check, all structural
artifacts come from the shared :class:`AnalysisContext`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol as TypingProtocol

from repro.constraints.backends import create_solver, resolve_backend_name
from repro.constraints.builders import ConstraintBuilder
from repro.constraints.context import AnalysisContext
from repro.constraints.incremental import ScopedSimplifier, bump, resolve_incremental
from repro.constraints.ir import DEFAULT_BOUND
from repro.constraints.simplify import SimplifyStats
from repro.constraints.simplify_cache import simplify_system_cached
from repro.datatypes.multiset import Multiset
from repro.engine import monitor
from repro.protocols.protocol import PopulationProtocol
from repro.smtlite.formula import Formula
from repro.smtlite.solver import SolverStatus
from repro.verification.results import CorrectnessCounterexample, RefinementStep
from repro.verification.strong_consensus import find_refinement


class PredicateLike(TypingProtocol):
    """Structural interface required of predicates."""

    def formula(self, input_vars: dict) -> Formula: ...

    def negation_formula(self, input_vars: dict) -> Formula: ...

    def evaluate(self, input_population) -> bool: ...


@dataclass
class CorrectnessResult:
    """Outcome of the correctness check."""

    holds: bool
    counterexample: CorrectnessCounterexample | None = None
    refinements: list[RefinementStep] = field(default_factory=list)
    statistics: dict = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


def _assert_correctness_base(
    protocol: PopulationProtocol,
    builder: ConstraintBuilder,
    solver,
    simplifier: SimplifyStats | None = None,
) -> tuple:
    """Declare the shared input/flow variables and assert the base constraints.

    The initial configuration is the image of the input under I, expressed
    directly over the input variables; the flow equations are likewise
    substituted away (c1 is an expression over the input and the flow).
    """
    variables = builder.correctness_variables()
    system = builder.correctness_base_system(variables)
    simplify_system_cached(system, tighten_bounds=False, simplifier=simplifier).assert_into(solver)
    return variables


def correctness_tasks(
    protocol: PopulationProtocol, context: AnalysisContext | None = None
) -> list[tuple[int, object]]:
    """The deterministic enumeration of (expected output, pattern) tasks."""
    if context is None:
        context = AnalysisContext(protocol)
    patterns = context.terminal_patterns
    tasks = []
    for expected_output in (1, 0):
        wrong_output = 1 - expected_output
        for pattern in patterns:
            if pattern.admits_output(protocol, wrong_output):
                tasks.append((expected_output, pattern))
    return tasks


def check_correctness_impl(
    protocol: PopulationProtocol,
    predicate: PredicateLike,
    theory: str = "auto",
    max_refinements: int = 10_000,
    jobs: int = 1,
    engine=None,
    backend: str | None = None,
    context: AnalysisContext | None = None,
    incremental: bool | None = None,
) -> CorrectnessResult:
    """Check that a protocol computes ``predicate``.

    The check is sound for protocols in WS³: a well-specified silent protocol
    stabilises, for every input, to the output of some reachable terminal
    configuration, and every reachable terminal configuration is potentially
    reachable, so if no potentially-reachable terminal configuration carries
    the wrong output the protocol computes the predicate.

    With ``jobs > 1`` (or a parallel ``engine``), the independent
    (direction, terminal pattern) subproblems are fanned out over worker
    processes; ``jobs=1`` runs the persistent-solver path unchanged.
    """
    if engine is not None and jobs != 1:
        raise ValueError("pass either jobs>1 or an engine, not both")
    if context is None:
        context = AnalysisContext(protocol)
    owned_engine = False
    if engine is None and jobs > 1:
        from repro.engine.scheduler import VerificationEngine

        engine = VerificationEngine(jobs=jobs)
        owned_engine = True
    if engine is not None and engine.parallel:
        try:
            return _check_correctness_engine(
                protocol, predicate, theory, max_refinements, engine, backend, context,
                incremental=incremental,
            )
        finally:
            if owned_engine:
                engine.shutdown()

    start = time.perf_counter()
    refinements: list[RefinementStep] = []
    simplifier = SimplifyStats()
    statistics = {"iterations": 0, "traps": 0, "siphons": 0, "solver_instances": 1}
    use_incremental = resolve_incremental(incremental)
    statistics["incremental"] = use_incremental

    # One persistent solver for both output directions and all terminal
    # support patterns (cf. the StrongConsensus check): the input encoding,
    # flow variables and non-negativity constraints are asserted once, the
    # per-direction/per-pattern constraints live in push/pop scopes, and
    # lemmas learned while refuting one pattern carry over to the next.
    builder = context.builder
    solver = create_solver(backend, theory=theory)
    scoped: ScopedSimplifier | None = None
    if use_incremental:
        variables = builder.correctness_variables()
        scoped = ScopedSimplifier(
            builder.correctness_base_system(variables), tighten_bounds=False, stats=simplifier
        )
        scoped.system.assert_into(solver)
    else:
        variables = _assert_correctness_base(protocol, builder, solver, simplifier)
    predicate_memo: dict[int, tuple] = {}

    def promote_cuts(new_steps: list[RefinementStep]) -> None:
        """Assert a pattern's new cuts once, at base level, in general form."""
        _input_vars, c0, c1, x1 = variables
        for step in new_steps:
            cut = builder.refinement_constraint(step, c0, c1, x1)
            for formula in scoped.add_delta(cut):
                solver.add(formula)
            bump("cuts_promoted_to_base")

    patterns = context.terminal_patterns
    for expected_output in (1, 0):
        wrong_output = 1 - expected_output
        for pattern in patterns:
            if not pattern.admits_output(protocol, wrong_output):
                continue
            # Cooperative checkpoint of the serial sweep (service jobs).
            monitor.check_cancelled()
            statistics["pattern_pairs"] = statistics.get("pattern_pairs", 0) + 1
            pattern_start = len(refinements)
            solver.push()
            if scoped is not None:
                scoped.push()
            try:
                outcome = _solve_pattern(
                    protocol,
                    builder,
                    solver,
                    variables,
                    predicate,
                    expected_output,
                    pattern,
                    max_refinements,
                    refinements,
                    statistics,
                    context=context,
                    simplifier=simplifier,
                    scoped=scoped,
                    predicate_memo=predicate_memo,
                )
            finally:
                solver.pop()
                if scoped is not None:
                    scoped.pop()
            if scoped is not None:
                promote_cuts(refinements[pattern_start:])
            if outcome is not None:
                statistics["solver"] = dict(solver.statistics)
                statistics["simplifier"] = simplifier.to_dict()
                if scoped is not None:
                    statistics["scoped_simplifier"] = scoped.savings_summary()
                statistics["backend"] = resolve_backend_name(backend)
                statistics["time"] = time.perf_counter() - start
                return CorrectnessResult(
                    holds=False,
                    counterexample=outcome,
                    refinements=refinements,
                    statistics=statistics,
                )

    statistics["solver"] = dict(solver.statistics)
    statistics["simplifier"] = simplifier.to_dict()
    if scoped is not None:
        statistics["scoped_simplifier"] = scoped.savings_summary()
    statistics["backend"] = resolve_backend_name(backend)
    statistics["time"] = time.perf_counter() - start
    return CorrectnessResult(holds=True, refinements=refinements, statistics=statistics)


def _solve_pattern(
    protocol: PopulationProtocol,
    builder: ConstraintBuilder,
    solver,
    variables: tuple,
    predicate: PredicateLike,
    expected_output: int,
    pattern,
    max_refinements: int,
    refinements: list[RefinementStep],
    statistics: dict,
    context: AnalysisContext | None = None,
    simplifier: SimplifyStats | None = None,
    scoped: ScopedSimplifier | None = None,
    predicate_memo: dict | None = None,
) -> CorrectnessCounterexample | None:
    """Run the refinement loop for one pattern inside an open solver scope.

    Non-incremental (``scoped is None``): the per-pattern block — the
    pattern membership, the wrong-output constraint, the compiled predicate
    (or its negation) and the trap/siphon constraints discovered for earlier
    patterns (they only reference the shared flow and configurations, so
    they are valid here too) — is one IR system, simplified without bound
    tightening (the scope is retractable).

    Incremental (``scoped`` given): earlier patterns' cuts already live at
    base level in general form, so the delta is only the pattern membership,
    the wrong-output constraint and the (per-direction memoized) compiled
    predicate; new cuts are asserted in general form and re-promoted to base
    by the caller after pop.  Equivalence with the specialized
    ``target_support`` form holds under pattern membership exactly as in the
    StrongConsensus check.
    """
    from repro.presburger.ir import predicate_system

    input_vars, c0, c1, x1 = variables
    supports = context.transition_supports if context is not None else None
    if scoped is not None:
        memo = predicate_memo if predicate_memo is not None else {}
        entry = memo.get(expected_output)
        if entry is None:
            compiled = predicate_system(predicate, input_vars, negate=(expected_output == 0))
            entry = (dict(compiled.bounds), list(compiled.constraints))
            memo[expected_output] = entry
        pred_bounds, pred_constraints = entry
        # The predicate's fresh existential variables (e.g. remainder
        # quotients) are declared unscoped — solver scopes never retract
        # declarations, so the mirror system must not either.  Re-declaring
        # on a later scope with the same direction is idempotent.
        for variable, (lower, upper) in pred_bounds.items():
            scoped.declare(variable, lower, upper)
            if (lower, upper) != DEFAULT_BOUND:
                solver.int_var(variable, lower=lower, upper=upper)
        delta = [
            builder.pattern(c1, pattern),
            builder.has_output(c1, 1 - expected_output),
            *pred_constraints,
        ]
        for formula in scoped.add_delta(*delta):
            solver.add(formula)
    else:
        system = builder.correctness_pattern_system(variables, expected_output, pattern, refinements)
        # The predicate block is compiled separately through the presburger->IR
        # path so fresh existential variables (remainder quotients) land in the
        # system's variable groups.
        system.merge(predicate_system(predicate, input_vars, negate=(expected_output == 0)))
        simplify_system_cached(system, tighten_bounds=False, simplifier=simplifier).assert_into(solver)

    for iteration in range(max_refinements):
        statistics["iterations"] += 1
        result = solver.check()
        if result.status is SolverStatus.UNSAT:
            return None
        if result.status is SolverStatus.UNKNOWN:
            raise RuntimeError("the constraint solver could not decide the correctness query")

        model = result.model
        initial = builder.configuration_from_model(model, c0)
        terminal = builder.configuration_from_model(model, c1)
        flow = builder.flow_from_model(model, x1)
        step = find_refinement(protocol, initial, terminal, flow, supports=supports)
        if step is None:
            input_population = Multiset(
                {
                    symbol: model.value(variable)
                    for symbol, variable in input_vars.items()
                    if model.value(variable) > 0
                }
            )
            return CorrectnessCounterexample(
                input_population=input_population,
                initial=initial,
                terminal=terminal,
                flow=flow,
                expected_output=expected_output,
            )
        step = RefinementStep(kind=step.kind, states=step.states, iteration=iteration)
        refinements.append(step)
        statistics["traps" if step.kind == "trap" else "siphons"] += 1
        monitor.emit_refinement_found(step.kind, step.states, step.iteration)
        if scoped is not None:
            for formula in scoped.add_delta(builder.refinement_constraint(step, c0, c1, x1)):
                solver.add(formula)
        else:
            solver.add(
                builder.refinement_constraint(step, c0, c1, x1, target_support=pattern.allowed)
            )
    raise RuntimeError(
        f"correctness refinement did not converge within {max_refinements} iterations"
    )


# ----------------------------------------------------------------------
# Correctness patterns as engine subproblems
# ----------------------------------------------------------------------


@dataclass
class CorrectnessPatternOutcome:
    """Worker-side outcome of one (direction, pattern) subproblem."""

    verdict: str  # "unsat" or "sat"
    new_refinements: list[RefinementStep]
    statistics: dict


def solve_correctness_pattern_subproblem(
    protocol: PopulationProtocol,
    predicate: PredicateLike,
    expected_output: int,
    pattern,
    seed_refinements,
    theory: str = "auto",
    max_refinements: int = 10_000,
    backend: str | None = None,
    context: AnalysisContext | None = None,
    incremental: bool | None = None,
) -> CorrectnessPatternOutcome:
    """Solve one (direction, pattern) subproblem on a fresh solver.

    Like its StrongConsensus counterpart, the outcome depends only on the
    arguments — never on sibling subproblems solved by the same process —
    which keeps parallel runs reproducible.  In incremental mode the seeded
    cuts are asserted once at base level in general form and the pattern's
    block lives in a scoped delta, mirroring the serial path.
    """
    if context is None:
        context = AnalysisContext(protocol)
    builder = context.builder
    solver = create_solver(backend, theory=theory)
    refinements = list(seed_refinements)
    seeded = len(refinements)
    statistics = {"iterations": 0, "traps": 0, "siphons": 0}
    use_incremental = resolve_incremental(incremental)
    scoped: ScopedSimplifier | None = None
    if use_incremental:
        variables = builder.correctness_variables()
        _input_vars, c0, c1, x1 = variables
        scoped = ScopedSimplifier(builder.correctness_base_system(variables), tighten_bounds=False)
        scoped.system.assert_into(solver)
        for step in refinements:
            for formula in scoped.add_delta(builder.refinement_constraint(step, c0, c1, x1)):
                solver.add(formula)
        solver.push()
        scoped.push()
    else:
        variables = _assert_correctness_base(protocol, builder, solver)
    try:
        outcome = _solve_pattern(
            protocol,
            builder,
            solver,
            variables,
            predicate,
            expected_output,
            pattern,
            max_refinements,
            refinements,
            statistics,
            context=context,
            scoped=scoped,
        )
    finally:
        if scoped is not None:
            solver.pop()
            scoped.pop()
            statistics["scoped_simplifier"] = scoped.savings_summary()
    statistics["solver"] = dict(solver.statistics)
    return CorrectnessPatternOutcome(
        verdict="unsat" if outcome is None else "sat",
        new_refinements=refinements[seeded:],
        statistics=statistics,
    )


def correctness_pattern_subproblems(
    protocol: PopulationProtocol,
    predicate: PredicateLike,
    tasks: list,
    seed_refinements: list[RefinementStep],
    theory: str,
    max_refinements: int,
    first_index: int,
    protocol_data: dict,
    protocol_key: str,
    backend: str | None = None,
    context_data: dict | None = None,
    incremental: bool | None = None,
) -> list:
    """Package a slice of the (direction, pattern) enumeration as subproblems."""
    from repro.engine.subproblem import Subproblem

    return [
        Subproblem(
            kind="correctness-pattern",
            index=first_index + offset,
            protocol_key=protocol_key,
            protocol_data=protocol_data,
            params={
                "predicate": predicate,
                "expected_output": expected_output,
                "pattern": pattern,
                "refinements": tuple(seed_refinements),
                "theory": theory,
                "max_refinements": max_refinements,
                "backend": backend,
                "context": context_data or {},
                "incremental": incremental,
            },
        )
        for offset, (expected_output, pattern) in enumerate(tasks)
    ]


def _check_correctness_engine(
    protocol: PopulationProtocol,
    predicate: PredicateLike,
    theory: str,
    max_refinements: int,
    engine,
    backend: str | None = None,
    context: AnalysisContext | None = None,
    incremental: bool | None = None,
) -> CorrectnessResult:
    """Fan the (direction, pattern) subproblems over the worker pool.

    Same coordination scheme as the parallel StrongConsensus check:
    deterministic waves of ``jobs`` subproblems, trap/siphon refinements
    merged between waves, and a serial re-run when a wrong-output witness is
    found so the reported counterexample is canonical.
    """
    from repro.engine.scheduler import run_refinement_sweep
    from repro.io.serialization import protocol_to_dict

    if context is None:
        context = AnalysisContext(protocol)
    start = time.perf_counter()
    tasks = correctness_tasks(protocol, context)
    protocol_data = protocol_to_dict(protocol)
    protocol_key = context.protocol_key
    context_data = context.export_data()
    statistics = {
        "iterations": 0,
        "traps": 0,
        "siphons": 0,
        "pattern_pairs": 0,
        "jobs": engine.jobs,
        "waves": 0,
        "solver_instances": 0,
    }
    sat_seen, refinements = run_refinement_sweep(
        engine,
        len(tasks),
        lambda wave_start, wave_end, seed: correctness_pattern_subproblems(
            protocol,
            predicate,
            tasks[wave_start:wave_end],
            seed,
            theory,
            max_refinements,
            wave_start,
            protocol_data,
            protocol_key,
            backend,
            context_data,
            incremental,
        ),
        statistics,
    )

    if sat_seen:
        serial = check_correctness_impl(
            protocol,
            predicate,
            theory=theory,
            max_refinements=max_refinements,
            backend=backend,
            context=context,
            incremental=incremental,
        )
        serial.statistics["parallel"] = {
            "jobs": engine.jobs,
            "waves": statistics["waves"],
            "fallback": "serial-rerun",
        }
        return serial
    statistics["time"] = time.perf_counter() - start
    return CorrectnessResult(holds=True, refinements=refinements, statistics=statistics)


def check_correctness(
    protocol: PopulationProtocol,
    predicate: PredicateLike,
    theory: str = "auto",
    max_refinements: int = 10_000,
    jobs: int = 1,
    engine=None,
    backend: str | None = None,
) -> CorrectnessResult:
    """Deprecated: use :class:`repro.api.Verifier` instead.

    ``Verifier().check(protocol, properties=["correctness"], predicate=...)``
    returns the same verdict and counterexample in report form; this shim
    delegates to the same implementation, so verdicts are identical.
    """
    import warnings

    warnings.warn(
        "check_correctness() is deprecated; use repro.api.Verifier"
        " (Verifier().check(protocol, properties=['correctness'], predicate=...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return check_correctness_impl(
        protocol,
        predicate,
        theory=theory,
        max_refinements=max_refinements,
        jobs=jobs,
        engine=engine,
        backend=backend,
    )
