"""Tests for the Petri-net substrate."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.datatypes.multiset import Multiset
from repro.petri.analysis import (
    agent_count_invariant,
    incidence_matrix,
    invariant_value,
    place_invariants,
    state_equation_holds,
)
from repro.petri.net import PetriNet, PetriNetError, PetriTransition
from repro.petri.normal_form import to_normal_form
from repro.petri.protocol_conversion import (
    petri_net_from_protocol,
    protocol_from_reachability_instance,
)
from repro.petri.reachability import coverable, explore, is_reachable
from repro.petri.traps_siphons import (
    is_siphon,
    is_trap,
    maximal_siphon_inside,
    maximal_trap_inside,
    siphon_trap_property_violations,
)
from repro.verification.explicit import verify_single_input


@pytest.fixture
def producer_consumer_net() -> PetriNet:
    """A tiny bounded producer/consumer net with a buffer of capacity two."""
    return PetriNet(
        places=["idle", "producing", "buffer", "consuming", "done", "slot"],
        transitions=[
            PetriTransition.make("start", {"idle": 1}, {"producing": 1}),
            PetriTransition.make("produce", {"producing": 1, "slot": 1}, {"idle": 1, "buffer": 1}),
            PetriTransition.make("consume", {"buffer": 1, "done": 1}, {"consuming": 1}),
            PetriTransition.make("finish", {"consuming": 1}, {"done": 1, "slot": 1}),
        ],
        name="producer-consumer",
    )


class TestNetBasics:
    def test_firing(self, producer_consumer_net):
        net = producer_consumer_net
        marking = Multiset({"idle": 1, "done": 1, "slot": 2})
        marking = net.fire(marking, "start")
        marking = net.fire(marking, "produce")
        assert marking == Multiset({"idle": 1, "buffer": 1, "done": 1, "slot": 1})
        assert net.transition("consume").enabled_at(marking)

    def test_firing_disabled_transition_raises(self, producer_consumer_net):
        with pytest.raises(PetriNetError):
            producer_consumer_net.fire(Multiset({"idle": 1}), "consume")

    def test_validation(self):
        with pytest.raises(PetriNetError):
            PetriNet(["p"], [PetriTransition.make("t", {"p": 1}, {"q": 1})])
        with pytest.raises(PetriNetError):
            PetriNet(
                ["p"],
                [
                    PetriTransition.make("t", {"p": 1}, {"p": 1}),
                    PetriTransition.make("t", {"p": 1}, {"p": 2}),
                ],
            )

    def test_conservative_detection(self, producer_consumer_net):
        assert not producer_consumer_net.is_conservative
        conservative = PetriNet(
            ["a", "b"], [PetriTransition.make("swap", {"a": 1, "b": 1}, {"b": 2})]
        )
        assert conservative.is_conservative

    def test_reversed_net(self, producer_consumer_net):
        reversed_net = producer_consumer_net.reversed()
        start = reversed_net.transition("start")
        assert start.pre == Multiset({"producing": 1})
        assert start.post == Multiset({"idle": 1})

    def test_fire_sequence_and_describe(self, producer_consumer_net):
        final = producer_consumer_net.fire_sequence(
            Multiset({"idle": 1, "done": 1, "slot": 2}), ["start", "produce", "consume", "finish"]
        )
        assert final == Multiset({"idle": 1, "done": 1, "slot": 2})
        assert "producer-consumer" in producer_consumer_net.describe()


class TestReachability:
    def test_explore_and_reachability(self, producer_consumer_net):
        initial = Multiset({"idle": 1, "done": 1, "slot": 2})
        graph = explore(producer_consumer_net, initial, max_markings=200)
        assert graph.complete
        assert Multiset({"idle": 1, "buffer": 1, "done": 1, "slot": 1}) in graph.markings
        assert is_reachable(
            producer_consumer_net,
            initial,
            Multiset({"consuming": 1, "idle": 1, "slot": 1}),
        )

    def test_unbounded_net_truncated(self):
        net = PetriNet(["p"], [PetriTransition.make("grow", {"p": 1}, {"p": 2})])
        graph = explore(net, Multiset({"p": 1}), max_markings=10)
        assert not graph.complete
        assert is_reachable(net, Multiset({"p": 1}), Multiset({"p": 100}), max_markings=10) is None

    def test_coverability(self, producer_consumer_net):
        initial = Multiset({"idle": 1, "done": 1, "slot": 2})
        assert coverable(producer_consumer_net, initial, Multiset({"buffer": 1}))
        # The slot place bounds the buffer at two tokens.
        assert not coverable(producer_consumer_net, initial, Multiset({"buffer": 3}))

    def test_deadlocks(self):
        net = PetriNet(
            ["p", "q"],
            [PetriTransition.make("t", {"p": 2}, {"q": 1})],
        )
        graph = explore(net, Multiset({"p": 3}))
        assert Multiset({"p": 1, "q": 1}) in graph.deadlocks()


class TestStructuralAnalysis:
    def test_incidence_matrix(self, producer_consumer_net):
        places, names, matrix = incidence_matrix(producer_consumer_net)
        assert len(matrix) == len(places)
        buffer_row = matrix[places.index("buffer")]
        assert buffer_row[names.index("produce")] == 1
        assert buffer_row[names.index("consume")] == -1

    def test_state_equation(self, producer_consumer_net):
        source = Multiset({"idle": 1, "done": 1, "slot": 2})
        target = producer_consumer_net.fire_sequence(source, ["start", "produce", "start"])
        assert state_equation_holds(
            producer_consumer_net, source, target, {"start": 2, "produce": 1}
        )
        assert not state_equation_holds(producer_consumer_net, source, target, {"start": 1})

    def test_place_invariants(self, producer_consumer_net):
        invariants = place_invariants(producer_consumer_net)
        assert invariants
        # Every invariant is conserved along firings.
        source = Multiset({"idle": 1, "done": 1, "slot": 2})
        target = producer_consumer_net.fire_sequence(source, ["start", "produce", "consume"])
        for invariant in invariants:
            assert invariant_value(invariant, source) == invariant_value(invariant, target)

    def test_conservative_net_has_agent_count_invariant(self):
        protocol_net = PetriNet(
            ["a", "b"], [PetriTransition.make("t", {"a": 1, "b": 1}, {"b": 2})]
        )
        invariant = agent_count_invariant(protocol_net)
        assert invariant == {"a": Fraction(1), "b": Fraction(1)}

    def test_non_conservative_net_has_no_agent_count_invariant(self, producer_consumer_net):
        assert agent_count_invariant(producer_consumer_net) is None


class TestTrapsAndSiphons:
    def test_trap_and_siphon_detection(self, producer_consumer_net):
        # {idle, producing} is both a trap and a siphon: every transition that
        # touches it keeps exactly one token inside.
        assert is_trap(producer_consumer_net, {"idle", "producing"})
        assert is_siphon(producer_consumer_net, {"idle", "producing"})
        # {buffer} is not a trap (consume drains it without refilling).
        assert not is_trap(producer_consumer_net, {"buffer"})

    def test_maximal_trap_and_siphon(self, producer_consumer_net):
        assert maximal_trap_inside(producer_consumer_net, {"idle", "producing", "buffer"}) == {
            "idle",
            "producing",
        }
        assert maximal_siphon_inside(producer_consumer_net, {"consuming", "done"}) == {
            "consuming",
            "done",
        }

    def test_initially_unmarked_siphon_detected(self, producer_consumer_net):
        violations = siphon_trap_property_violations(
            producer_consumer_net, Multiset({"idle": 1})
        )
        assert violations
        assert {"consuming", "done"} <= set(violations[0])


class TestNormalForm:
    def test_wide_transition_gets_widget(self):
        net = PetriNet(
            ["a", "b", "c", "d", "e"],
            [PetriTransition.make("wide", {"a": 1, "b": 1, "c": 1}, {"d": 1, "e": 1})],
        )
        result = to_normal_form(net)
        assert result.net.in_normal_form()
        # Reachability between clean markings is preserved.
        initial = result.lift_marking(Multiset({"a": 1, "b": 1, "c": 1}))
        graph = explore(result.net, initial, max_markings=500)
        target = result.lift_marking(Multiset({"d": 1, "e": 1}))
        assert target in graph.markings

    def test_simple_transitions_kept(self):
        net = PetriNet(
            ["a", "b"],
            [PetriTransition.make("move", {"a": 1}, {"b": 1})],
        )
        result = to_normal_form(net)
        assert result.net.num_transitions == 1
        assert result.net.in_normal_form()


class TestProtocolConversion:
    def test_protocol_to_net_roundtrip_semantics(self, majority_protocol):
        net = petri_net_from_protocol(majority_protocol)
        assert net.is_conservative
        assert net.num_places == 4
        assert net.num_transitions == 4
        # Firing in the net matches firing in the protocol.
        marking = Multiset({"A": 1, "B": 1})
        successor = net.fire(marking, net.transitions[0].name)
        assert successor.size() == 2

    def test_proposition_3_reduction_negative_instance(self):
        # A net in which the target place can never reach zero together with
        # the source-place condition: the resulting protocol must be silent
        # and stabilise to 0 for small inputs (it is in WS2).
        net = PetriNet(
            ["p", "q"],
            [PetriTransition.make("t", {"p": 1}, {"q": 1})],
        )
        reduction = protocol_from_reachability_instance(net, Multiset({"p": 1}), target_place="q")
        protocol = reduction.protocol
        assert protocol.num_states >= 5
        assert protocol.output_map[reduction.source_place] == 1
        # All small inputs stabilise (to 0): the Collect machinery wins.
        for symbol in list(protocol.input_alphabet)[:2]:
            result = verify_single_input(protocol, {symbol: 2}, max_configurations=20_000)
            assert result.well_specified
            assert result.output == 0

    def test_proposition_3_reduction_validates_input(self):
        net = PetriNet(["p"], [PetriTransition.make("t", {"p": 1}, {"p": 1})])
        with pytest.raises(PetriNetError):
            protocol_from_reachability_instance(net, Multiset({"p": 1}), target_place="missing")
