"""Tests for the operational semantics: steps, reachability, SCC analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes.multiset import Multiset
from repro.protocols import semantics
from repro.protocols.protocol import PopulationProtocol, Transition
from repro.protocols.semantics import (
    ExplorationLimitError,
    enabled_transitions,
    enumerate_inputs,
    fire_sequence,
    is_consensus,
    is_reachable,
    is_terminal,
    output_of,
    reachability_graph,
    reachable_configurations,
    reachable_terminal_configurations,
    strongly_connected_components,
)


class TestEnabledAndFire:
    def test_enabled_transitions(self, majority_protocol):
        config = Multiset({"A": 1, "B": 1})
        enabled = enabled_transitions(majority_protocol, config)
        assert {t.name for t in enabled} == {"tAB"}

    def test_enabled_needs_both_agents(self, majority_protocol):
        config = Multiset({"A": 2})
        assert enabled_transitions(majority_protocol, config) == []

    def test_fire_sequence(self, majority_protocol):
        by_name = {t.name: t for t in majority_protocol.transitions}
        config = Multiset({"A": 1, "B": 2})
        final = fire_sequence(config, [by_name["tAB"], by_name["tBa"]])
        assert final == Multiset({"B": 1, "b": 2})

    def test_successors(self, majority_protocol):
        config = Multiset({"A": 1, "B": 1, "a": 1})
        succ = semantics.successors(majority_protocol, config)
        assert Multiset({"a": 2, "b": 1}) in succ

    def test_agent_count_preserved(self, majority_protocol):
        config = Multiset({"A": 3, "B": 2})
        for successor in semantics.successors(majority_protocol, config):
            assert successor.size() == config.size()


class TestTerminalAndConsensus:
    def test_terminal(self, majority_protocol):
        assert is_terminal(majority_protocol, Multiset({"b": 3}))
        assert is_terminal(majority_protocol, Multiset({"A": 2, "a": 1}))
        assert not is_terminal(majority_protocol, Multiset({"A": 1, "B": 1}))

    def test_consensus_and_output(self, majority_protocol):
        assert is_consensus(majority_protocol, Multiset({"B": 1, "b": 2}))
        assert output_of(majority_protocol, Multiset({"B": 1, "b": 2})) == 1
        assert output_of(majority_protocol, Multiset({"A": 1, "a": 1})) == 0
        assert output_of(majority_protocol, Multiset({"A": 1, "b": 1})) is None


class TestReachability:
    def test_majority_tie_reaches_all_b(self, majority_protocol):
        initial = Multiset({"A": 2, "B": 2})
        terminals = reachable_terminal_configurations(majority_protocol, initial)
        assert terminals == {Multiset({"b": 4})}

    def test_majority_a_wins(self, majority_protocol):
        initial = Multiset({"A": 2, "B": 1})
        terminals = reachable_terminal_configurations(majority_protocol, initial)
        assert all(t.support() <= {"A", "a"} for t in terminals)
        assert all(output_of(majority_protocol, t) == 0 for t in terminals)

    def test_reachable_configurations_contains_initial(self, majority_protocol):
        initial = Multiset({"A": 1, "B": 1})
        assert initial in reachable_configurations(majority_protocol, initial)

    def test_is_reachable(self, majority_protocol):
        assert is_reachable(majority_protocol, Multiset({"A": 1, "B": 1}), Multiset({"b": 2}))
        assert not is_reachable(majority_protocol, Multiset({"A": 2, "B": 1}), Multiset({"b": 3}))
        assert not is_reachable(majority_protocol, Multiset({"A": 2, "B": 1}), Multiset({"b": 2}))

    def test_exploration_limit(self, majority_protocol):
        with pytest.raises(ExplorationLimitError):
            reachable_terminal_configurations(
                majority_protocol, Multiset({"A": 5, "B": 5}), max_configurations=3
            )

    def test_restricted_exploration(self, majority_protocol):
        by_name = {t.name: t for t in majority_protocol.transitions}
        graph = reachability_graph(
            majority_protocol,
            Multiset({"A": 1, "B": 1}),
            restrict_to=[by_name["tAb"]],
        )
        # Only the silent-free transition tAB could fire, but it is excluded.
        assert graph.configurations == {Multiset({"A": 1, "B": 1})}

    def test_flow_equation_holds_along_paths(self, majority_protocol):
        # For every step C -> C', C'(q) = C(q) + post(q) - pre(q).
        config = Multiset({"A": 2, "B": 3})
        for transition in enabled_transitions(majority_protocol, config):
            successor = transition.fire(config)
            for state in majority_protocol.states:
                assert successor[state] == config[state] + transition.post[state] - transition.pre[state]


class TestBottomSCCs:
    def test_majority_bottom_sccs_are_terminal(self, majority_protocol):
        graph = reachability_graph(majority_protocol, Multiset({"A": 2, "B": 2}))
        bottoms = graph.bottom_sccs()
        assert bottoms
        for component in bottoms:
            assert len(component) == 1
            (config,) = component
            assert is_terminal(majority_protocol, config)

    def test_non_silent_protocol_has_cyclic_bottom_scc(self):
        # Two agents alternating between states p and q forever.
        protocol = PopulationProtocol(
            states=["p", "q"],
            transitions=[
                Transition.make(("p", "p"), ("q", "q")),
                Transition.make(("q", "q"), ("p", "p")),
            ],
            input_alphabet=["p"],
            input_map={"p": "p"},
            output_map={"p": 1, "q": 1},
        )
        graph = reachability_graph(protocol, Multiset({"p": 2}))
        bottoms = graph.bottom_sccs()
        assert len(bottoms) == 1
        assert len(bottoms[0]) == 2

    def test_strongly_connected_components_simple_cycle(self):
        a, b, c = Multiset({"x": 1, "y": 1}), Multiset({"x": 2}), Multiset({"y": 2})
        edges = {a: frozenset({b}), b: frozenset({a}), c: frozenset({a})}
        sccs = strongly_connected_components(edges)
        assert sorted(len(s) for s in sccs) == [1, 2]


class TestEnumerateInputs:
    def test_counts(self, majority_protocol):
        inputs = list(enumerate_inputs(majority_protocol, 3))
        assert len(inputs) == 4  # (0,3), (1,2), (2,1), (3,0)
        assert all(x.size() == 3 for x in inputs)

    def test_small_size_rejected(self, majority_protocol):
        with pytest.raises(Exception):
            list(enumerate_inputs(majority_protocol, 1))

    @given(st.integers(min_value=2, max_value=7))
    @settings(max_examples=6, deadline=None)
    def test_number_of_inputs_binomial(self, size):
        protocol = PopulationProtocol(
            states=["s"],
            transitions=[],
            input_alphabet=["x", "y", "z"],
            input_map={"x": "s", "y": "s", "z": "s"},
            output_map={"s": 1},
        )
        inputs = list(enumerate_inputs(protocol, size))
        assert len(inputs) == (size + 1) * (size + 2) // 2


class TestSimulation:
    def test_majority_simulation_agrees_with_semantics(self, majority_protocol):
        from repro.protocols.simulation import Simulator

        simulator = Simulator(majority_protocol, seed=1)
        result = simulator.run(input_population={"A": 3, "B": 5})
        assert result.converged
        assert result.output == 1
        assert result.final.size() == 8

    def test_minority_simulation(self, majority_protocol):
        from repro.protocols.simulation import Simulator

        simulator = Simulator(majority_protocol, seed=2)
        result = simulator.run(input_population={"A": 6, "B": 2})
        assert result.converged
        assert result.output == 0

    def test_tie_goes_to_b(self, majority_protocol):
        from repro.protocols.simulation import Simulator

        stats = Simulator(majority_protocol, seed=3).run_batch({"A": 4, "B": 4}, runs=5)
        assert stats.agreed_output() == 1
        assert stats.converged_runs == 5

    def test_broadcast_simulation(self, broadcast_protocol):
        from repro.protocols.simulation import simulate

        result = simulate(broadcast_protocol, {"one": 1, "zero": 7}, seed=4)
        assert result.converged
        assert result.output == 1

    def test_simulation_requires_exactly_one_source(self, majority_protocol):
        from repro.protocols.simulation import Simulator

        simulator = Simulator(majority_protocol, seed=0)
        with pytest.raises(Exception):
            simulator.run()
        with pytest.raises(Exception):
            simulator.run(input_population={"A": 2}, configuration=Multiset({"A": 2}))

    def test_max_steps_cutoff(self):
        protocol = PopulationProtocol(
            states=["p", "q"],
            transitions=[
                Transition.make(("p", "p"), ("q", "q")),
                Transition.make(("q", "q"), ("p", "p")),
            ],
            input_alphabet=["p"],
            input_map={"p": "p"},
            output_map={"p": 1, "q": 1},
        )
        from repro.protocols.simulation import Simulator

        result = Simulator(protocol, seed=0, max_steps=50).run(input_population={"p": 2})
        assert not result.converged
        assert result.steps == 50
