"""Compilation of Presburger predicates into the constraint IR.

The predicates of :mod:`repro.presburger.predicates` know how to describe
themselves as raw :class:`~repro.smtlite.formula.Formula` objects; this
module lifts that description into a full
:class:`~repro.constraints.ir.ConstraintSystem`: the input-symbol count
variables land in the ``"input"`` group, the fresh existential variables a
remainder predicate introduces (division quotients and residues) land in
the ``"presburger:aux"`` group with their natural-number bounds declared,
and the resulting system composes (``merge``) with the verification
builders' blocks before simplification and backend dispatch.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.constraints.ir import ConstraintSystem
from repro.smtlite.terms import LinearExpr


def predicate_system(
    predicate, input_vars: Mapping, negate: bool = False, name: str = "predicate"
) -> ConstraintSystem:
    """Compile a predicate (or its negation) over ``input_vars`` to the IR.

    ``input_vars`` maps input symbols to variable names or
    :class:`LinearExpr` variables, exactly as the predicates'
    ``formula``/``negation_formula`` methods expect.
    """
    system = ConstraintSystem(name)
    known: set[str] = set()
    for variable in input_vars.values():
        variable_name = variable if isinstance(variable, str) else next(iter(variable.variables()))
        known.add(variable_name)
        system.declare(variable_name, group="input")
    formula = predicate.negation_formula(input_vars) if negate else predicate.formula(input_vars)
    system.add(formula)
    # Fresh existential variables (remainder quotients/residues) get the
    # natural-number bound and their own group.
    for variable_name in sorted(formula.int_variables() - known):
        system.declare(variable_name, group="presburger:aux")
    return system
