"""Two "flock of birds" protocols computing the predicate ``#sick >= c``.

Both families are used in the paper's evaluation (Table 1):

* :func:`flock_of_birds_protocol` — the value-accumulation variant in the
  style of Chatzigiannakis et al. [6]: agents add up their values; once an
  agent reaches the threshold ``c`` it converts everybody to the accepting
  state.  ``|Q| = c + 1`` and ``|T| = c(c+1)/2`` non-silent transitions.
* :func:`flock_of_birds_threshold_n_protocol` — the "threshold-n" variant of
  Clément et al. [8]: two agents at the same level push one of them a level
  up, so level ``c`` is reachable iff at least ``c`` agents are sick.
  ``|Q| = c + 1`` and ``|T| = 2c - 1``.
"""

from __future__ import annotations

from repro.presburger.predicates import ThresholdPredicate
from repro.protocols.protocol import PopulationProtocol, Transition


def _sick_at_least(c: int) -> ThresholdPredicate:
    """The predicate ``#sick >= c`` as a threshold predicate ``-#sick < -(c-1)``."""
    return ThresholdPredicate({"sick": -1, "healthy": 0}, -(c - 1))


def flock_of_birds_protocol(c: int) -> PopulationProtocol:
    """Value-accumulation flock-of-birds protocol for the predicate ``#sick >= c``.

    States are the values ``0 .. c``.  Sick birds start with value 1, healthy
    birds with value 0.  Two positive values merge into one agent (the other
    drops to 0); when the sum reaches ``c`` both agents move to the accepting
    state ``c``, which then converts everyone else.
    """
    if c < 2:
        raise ValueError("the flock-of-birds threshold c must be at least 2")
    transitions = []
    for i in range(1, c + 1):
        for j in range(i, c + 1):
            if i + j < c:
                post = (i + j, 0)
            else:
                post = (c, c)
            transitions.append(Transition.make((i, j), post, name=f"merge_{i}_{j}"))
    transitions.append(Transition.make((c, 0), (c, c), name="convert_0"))

    return PopulationProtocol(
        states=range(c + 1),
        transitions=transitions,
        input_alphabet=["sick", "healthy"],
        input_map={"sick": 1, "healthy": 0},
        output_map={state: 1 if state == c else 0 for state in range(c + 1)},
        name=f"flock-of-birds[c={c}]",
        metadata={
            "predicate": _sick_at_least(c),
            "source": "Chatzigiannakis et al. [6]",
            "parameter": c,
        },
    )


def flock_of_birds_threshold_n_protocol(c: int) -> PopulationProtocol:
    """The "threshold-n" flock-of-birds protocol of [8] for ``#sick >= c``.

    Two agents at the same level ``k`` promote one of them to ``k + 1``;
    because promoting to level ``k + 1`` requires two agents at level ``k``
    (one of which stays behind), level ``c`` is reached iff at least ``c``
    agents started at level 1.  Once level ``c`` is reached its owner
    converts every other agent.
    """
    if c < 2:
        raise ValueError("the flock-of-birds threshold c must be at least 2")
    transitions = []
    for level in range(1, c):
        transitions.append(
            Transition.make((level, level), (level + 1, level), name=f"promote_{level}")
        )
    for level in range(c):
        transitions.append(Transition.make((c, level), (c, c), name=f"convert_{level}"))

    return PopulationProtocol(
        states=range(c + 1),
        transitions=transitions,
        input_alphabet=["sick", "healthy"],
        input_map={"sick": 1, "healthy": 0},
        output_map={state: 1 if state == c else 0 for state in range(c + 1)},
        name=f"flock-of-birds-threshold-n[c={c}]",
        metadata={
            "predicate": _sick_at_least(c),
            "source": "Clément et al. [8] (threshold-n)",
            "parameter": c,
        },
    )
