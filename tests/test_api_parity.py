"""Old-vs-new API parity: the deprecated shims and the Verifier agree exactly.

For every protocol family below, the legacy entry points (``verify_ws3``,
``check_*``) and ``Verifier().check(...)`` must produce identical verdicts,
identical counterexamples and matching certificates — the acceptance bar for
keeping the shims around during the migration.
"""

from __future__ import annotations

import pytest

from repro.api import Verdict, Verifier
from repro.protocols.library import (
    broadcast_protocol,
    coin_flip_protocol,
    exclusive_majority_protocol,
    flock_of_birds_protocol,
    majority_protocol,
    oscillating_majority_protocol,
    remainder_protocol,
)
from repro.verification.correctness import check_correctness
from repro.verification.layered_termination import check_layered_termination
from repro.verification.strong_consensus import check_strong_consensus
from repro.verification.ws3 import verify_ws3

FAMILIES = [
    ("majority", majority_protocol),
    ("broadcast", broadcast_protocol),
    ("flock-of-birds-4", lambda: flock_of_birds_protocol(4)),
    ("remainder-3", lambda: remainder_protocol([1], 3, 1)),
    ("coin-flip", coin_flip_protocol),
    ("exclusive-majority", exclusive_majority_protocol),
]


@pytest.mark.parametrize("name,factory", FAMILIES, ids=[name for name, _ in FAMILIES])
def test_ws3_verdicts_and_counterexamples_match(name, factory):
    old = verify_ws3(factory())
    report = Verifier().check(factory(), properties=["ws3"])

    assert report.is_ws3 == old.is_ws3
    assert report.holds("layered_termination") == old.layered_termination.holds

    new_sc = report.result_for("strong_consensus")
    if old.strong_consensus is None:
        assert new_sc.verdict is Verdict.SKIPPED
    else:
        assert new_sc.holds == old.strong_consensus.holds
        assert new_sc.counterexample == old.strong_consensus.counterexample
        assert new_sc.refinements == old.strong_consensus.refinements


def test_ws3_parity_when_layered_termination_fails():
    old = verify_ws3(oscillating_majority_protocol())
    report = Verifier().check(oscillating_majority_protocol())
    assert not old.is_ws3 and not report.is_ws3
    assert old.strong_consensus is None
    assert report.result_for("strong_consensus").verdict is Verdict.SKIPPED
    assert report.result_for("layered_termination").reason == old.layered_termination.reason


def test_layered_termination_certificate_parity():
    old = check_layered_termination(majority_protocol(), materialize_rankings=True)
    report = Verifier(materialize_rankings=True).check(
        majority_protocol(), properties=["layered_termination"]
    )
    new = report.result_for("layered_termination")
    assert new.holds == old.holds
    assert new.certificate.partition == old.certificate.partition
    assert new.certificate.strategy == old.certificate.strategy
    assert [layer.ranking for layer in new.certificate.layers] == [
        layer.ranking for layer in old.certificate.layers
    ]


def test_strong_consensus_counterexample_parity():
    old = check_strong_consensus(coin_flip_protocol())
    report = Verifier().check(coin_flip_protocol(), properties=["strong_consensus"])
    new = report.result_for("strong_consensus")
    assert not old.holds and not new.holds
    assert new.counterexample == old.counterexample


def test_correctness_counterexample_parity():
    wrong_predicate = majority_protocol().metadata["predicate"]
    old = check_correctness(exclusive_majority_protocol(), wrong_predicate)
    report = Verifier().check(
        exclusive_majority_protocol(), properties=["correctness"], predicate=wrong_predicate
    )
    new = report.result_for("correctness")
    assert not old.holds and not new.holds
    assert new.counterexample == old.counterexample
    assert new.refinements == old.refinements


def test_correctness_documented_predicate_parity():
    protocol = broadcast_protocol()
    old = check_correctness(protocol, protocol.metadata["predicate"])
    # The Verifier defaults to the documented predicate from the metadata.
    report = Verifier().check(broadcast_protocol(), properties=["correctness"])
    assert report.holds("correctness") == old.holds
